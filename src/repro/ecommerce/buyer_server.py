"""The Buyer Agent Server — the consumer recommendation mechanism itself.

"Buyer Agent Server is also the proposed consumer recommendation mechanism.
... A consumer recommendation mechanism stands for servicing a consumer
community and providing the executable system and providing the storage of
saving consumer personal information." (§3.2)

:class:`BuyerAgentServer` is the host-side wrapper: it runs the Figure 4.1
bootstrap against the coordinator (which dispatches the BSMA here), attaches
the shared services (UserDB, BSMDB, the profile learner and the
recommendation service) and exposes the handles the consumer-facing
:class:`~repro.ecommerce.session.ConsumerSession` needs.

**Replication semantics** (when :meth:`BuyerAgentServer.enable_replication`
is wired, normally via ``PlatformConfig.replication_factor``):

- *Durable:* everything in UserDB — registrations, the full learned profile
  (every learning update streams a post-update snapshot), observational
  ratings in arrival order, transaction records and login stamps.  All of it
  reaches the server's replica peers as write-ahead-log entries over the
  simulated network, so a crash loses at most the unshipped tail
  (:meth:`~repro.ecommerce.replication.ReplicationManager.lag_of` makes that
  tail visible, and the ``replication.lag.*`` gauges mirror it in metrics).
- *Lost on crash:* soft state only — BSMDB online-session records, live
  agent instances and the batch recommendation cache.  All of it is rebuilt
  on the consumer's next login at the surviving server.
- *Failover:* :meth:`BuyerServerFleet.handle_server_failure` restores a
  crashed server's consumers **from replicas alone** — zero reads against
  the dead host's memory.  By default the freshest replica holder is
  *promoted* to primary for the dead server's shards (in-place shard-map
  update, no re-registration, no state transfer — the replica already
  lives there); ``strategy="drain"`` keeps the per-consumer hand-off onto
  hash-placed survivors.  Consumers whose registration never reached a
  replica are reported as lost, not resurrected empty.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import (
    ECommerceError,
    FleetUnavailableError,
    NetworkError,
    RegistrationError,
    ShardMapError,
)
from repro.agents.context import AgletContext
from repro.agents.messages import MessageKinds
from repro.core.cold_start import ColdStartPolicy, ColdStartStrategy
from repro.core.cross_sell import CrossSellRecommender
from repro.core.hybrid import AgentHybridRecommender
from repro.core.information_filtering import InformationFilteringRecommender
from repro.core.items import Item, ItemCatalogView
from repro.core.neighbors import ProfileNeighborIndex
from repro.core.popularity import PopularityRecommender, WeeklyHottestRecommender
from repro.core.profile import Profile
from repro.core.profile_learning import LearningConfig, ProfileLearner
from repro.core.recommender import Recommendation, RecommendationEngine
from repro.core.scoring import resolve_backend
from repro.core.shard_map import ShardMap, split_membership
from repro.core.sharding import ShardRouter, ShardedNeighborIndex, merge_topk
from repro.core.similarity import SimilarityConfig
from repro.ecommerce.buyer_agents import BuyerServerManagementAgent, HttpAgent
from repro.ecommerce.databases import BSMDB, UserDB
from repro.ecommerce.replication import ReplicaState, ReplicationManager
from repro.platform.clock import RecurringCallback

__all__ = [
    "RecommendationService",
    "BuyerAgentServer",
    "BuyerServerFleet",
    "FleetQueryResult",
    "FleetRefreshReport",
    "ShardSplit",
]

#: Estimated wire size of one fan-out query request (target profile summary).
FANOUT_REQUEST_BYTES = 512
#: Estimated wire size of one ``(user_id, score)`` pair in a shard response.
FANOUT_BYTES_PER_RESULT = 48
#: Simulated cost of merging one candidate during fan-out result merge.
FANOUT_MERGE_COST_PER_CANDIDATE_MS = 0.001


def _latency_percentile(ordered: List[float], fraction: float) -> float:
    """The ``fraction``-th percentile of ascending ``ordered`` latencies.

    Same monotone linear-interpolation rank the metrics registry's
    ``summarize`` uses, so a hedge delay of ``p=0.95`` means exactly what
    the reported ``p95`` means.
    """
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    weight = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * weight


class RecommendationService:
    """Recommendation engines wired to the buyer agent server's databases.

    The BRA fetches this service from its host whenever it needs to generate
    recommendation information (§3.3-2), so the engines always see the latest
    profiles and observational ratings in UserDB.
    """

    def __init__(
        self,
        user_db: UserDB,
        catalog: ItemCatalogView,
        similarity_config: Optional[SimilarityConfig] = None,
        now: Optional[callable] = None,
        profile_learner: Optional[ProfileLearner] = None,
        neighbor_shards: int = 1,
        shard_routing: str = "hash",
        scoring_backend: str = "array",
    ) -> None:
        self.user_db = user_db
        self.catalog = catalog
        self.similarity_config = similarity_config or SimilarityConfig()
        self.now = now if now is not None else (lambda: 0.0)
        self.scoring_backend = resolve_backend(scoring_backend)
        self.profile_learner = profile_learner

        def profile_of(user_id: str) -> Optional[Profile]:
            if not user_db.is_registered(user_id):
                return None
            return user_db.profile(user_id)

        # Neighbor search runs against the precomputed index, kept in sync
        # with UserDB by provider reconciliation and, when the learner is
        # known, by precise per-consumer invalidation hooks.  With
        # ``neighbor_shards > 1`` the index is partitioned: every shard owns
        # an independent sub-index with norm-bound early termination, and
        # queries fan out and merge — score-identical to the single index.
        if neighbor_shards > 1:
            self.neighbor_index = ShardedNeighborIndex(
                provider=user_db.profiles,
                config=self.similarity_config,
                num_shards=neighbor_shards,
                routing=shard_routing,
                provider_version=user_db.profiles_version,
                backend=self.scoring_backend,
            )
        else:
            self.neighbor_index = ProfileNeighborIndex(
                provider=user_db.profiles,
                config=self.similarity_config,
                provider_version=user_db.profiles_version,
                backend=self.scoring_backend,
            )
        if profile_learner is not None:
            self.neighbor_index.attach_to(profile_learner)

        self.hybrid = AgentHybridRecommender(
            ratings=user_db.ratings,
            catalog=catalog,
            profile_of=profile_of,
            all_profiles=user_db.profiles,
            similarity_config=self.similarity_config,
            neighbor_index=self.neighbor_index,
        )
        self.information_filtering = InformationFilteringRecommender(catalog, profile_of)
        self.popularity = PopularityRecommender(user_db.ratings, catalog)
        # §5.2 future-work extensions: weekly hottest and tied-sale suggestions.
        self.weekly_hottest = WeeklyHottestRecommender(
            user_db.ratings, now=self.now, catalog=catalog
        )
        self.cross_sell = CrossSellRecommender(user_db.ratings, catalog)
        self.cold_start = ColdStartPolicy(
            strategy=ColdStartStrategy.CONTENT_THEN_POPULARITY,
            content_recommender=self.information_filtering,
            popularity_recommender=self.popularity,
        )
        self.engine = RecommendationEngine(
            primary=self.hybrid,
            ratings=user_db.ratings,
            fallback=self.popularity,
        )
        self._batch_cache: Dict[str, List[Recommendation]] = {}
        self._batch_cache_k: Dict[str, int] = {}
        self._invalidation_enabled = False
        self.cache_invalidations = 0
        self.last_batch_refresh_at: Optional[float] = None

    def recommend(
        self, user_id: str, k: int = 10, category: Optional[str] = None
    ) -> List[Recommendation]:
        """Recommendations for ``user_id`` (hybrid with popularity fallback)."""
        return self.engine.recommend(user_id, k=k, category=category)

    def recommend_many(
        self, user_ids: Iterable[str], k: int = 10, category: Optional[str] = None
    ) -> Dict[str, List[Recommendation]]:
        """Batch recommendations — identical output to per-user ``recommend``."""
        return self.engine.recommend_many(user_ids, k=k, category=category)

    def batch_refresh(
        self, user_ids: Iterable[str], k: int = 10
    ) -> Dict[str, List[Recommendation]]:
        """Recompute and cache recommendation lists for a set of consumers.

        The cache feeds :meth:`cached_recommendations` (e.g. instant lists on
        login); on-demand :meth:`recommend` calls always compute fresh.
        """
        results = self.recommend_many(user_ids, k=k)
        # Cache copies: callers may reorder/extend the returned lists freely
        # without corrupting what cached_recommendations serves later.
        for user_id, recs in results.items():
            self._batch_cache[user_id] = list(recs)
            self._batch_cache_k[user_id] = k
        self.last_batch_refresh_at = self.now()
        return results

    def cached_recommendations(
        self, user_id: str, k: Optional[int] = None
    ) -> Optional[List[Recommendation]]:
        """The last batch-refreshed list for ``user_id`` (None when absent).

        With ``k`` the entry only qualifies when it was refreshed at exactly
        that list length — a cache hit must be byte-identical to a fresh
        ``recommend(user_id, k=k)``, and a list computed at a different ``k``
        is not a prefix/extension guarantee this cache is willing to make.
        """
        cached = self._batch_cache.get(user_id)
        if cached is None:
            return None
        if k is not None and self._batch_cache_k.get(user_id) != k:
            return None
        return list(cached)

    def invalidate_cached(self, user_id: str) -> None:
        """Drop ``user_id``'s batch-refreshed list (no-op when absent)."""
        if self._batch_cache.pop(user_id, None) is not None:
            self.cache_invalidations += 1
        self._batch_cache_k.pop(user_id, None)

    def enable_batch_invalidation(self) -> None:
        """Keep the batch cache honest under writes (gateway envelope cache).

        Registers two precise per-consumer invalidation paths:

        - a :class:`ProfileLearner` update hook, so in-place learning updates
          (ratings/feedback applied to a profile) drop that consumer's entry;
        - a UserDB mutation listener, so durable writes that *don't* flow
          through the learner — recorded transactions, observational
          interactions, wholesale profile replacement — drop it too.  A
          purchase changes purchase-history-driven scores even when no
          learning event fires, so listening to the learner alone would
          serve stale lists.

        Idempotent; only wired when a caller (the gateway, when
        ``PlatformConfig.api_recommendation_cache`` is on) opts in, so the
        default configuration keeps the PR-7 hook graph byte-identical.
        """
        if self._invalidation_enabled:
            return
        self._invalidation_enabled = True
        # Entries cached before the hooks existed may already be stale in
        # ways nobody recorded; drop them so only post-arming refreshes are
        # ever eligible to serve.
        self._batch_cache.clear()
        self._batch_cache_k.clear()
        if self.profile_learner is not None:
            self.profile_learner.add_update_hook(self._on_learner_update)
        self.user_db.add_mutation_listener(self._on_db_mutation)

    def _on_learner_update(self, profile: Profile, event) -> None:
        self.invalidate_cached(profile.user_id)

    def _on_db_mutation(self, op: str, payload: Dict) -> None:
        if op == "transaction":
            self.invalidate_cached(payload["transaction"].user_id)
        elif op == "interaction":
            self.invalidate_cached(payload["interaction"].user_id)
        elif op == "store-profile":
            self.invalidate_cached(payload["profile"]["user_id"])
        elif op == "unregister":
            self.invalidate_cached(payload["user_id"])

    def weekly_hottest_list(
        self, k: int = 10, category: Optional[str] = None
    ) -> List[Recommendation]:
        """The weekly hottest merchandise (§5.2 future-work item 2)."""
        return self.weekly_hottest.recommend("*community*", k=k, category=category)

    def cross_sell_for(
        self,
        user_id: str,
        k: int = 5,
        category: Optional[str] = None,
        basket: Optional[List[str]] = None,
    ) -> List[Recommendation]:
        """Tied-sale suggestions for an explicit basket or the purchase history."""
        if basket:
            return self.cross_sell.recommend_for_basket(
                list(basket), k=k, category=category
            )
        return self.cross_sell.recommend(user_id, k=k, category=category)

    def recommend_for_query(
        self, user_id: str, query_items: List[Item], k: int = 10, extra: int = 5
    ) -> List[Recommendation]:
        """Rank live query results and append similar-consumer discoveries."""
        known_items = [item for item in query_items if item.item_id in self.catalog]
        unknown_items = [item for item in query_items if item.item_id not in self.catalog]
        for item in unknown_items:
            # Merchandise discovered at a marketplace but not yet in the local
            # view becomes part of the recommendation catalogue from now on.
            self.catalog.add(item)
            known_items.append(item)
        return self.hybrid.recommend_for_query(user_id, known_items, k=k, extra=extra)


class BuyerAgentServer:
    """One buyer agent server (consumer recommendation mechanism)."""

    def __init__(
        self,
        context: AgletContext,
        coordinator_agent_id: str,
        catalog: Optional[ItemCatalogView] = None,
        learning_config: Optional[LearningConfig] = None,
        similarity_config: Optional[SimilarityConfig] = None,
        neighbor_shards: int = 1,
        shard_routing: str = "hash",
        scoring_backend: str = "array",
    ) -> None:
        self.context = context
        self.name = context.host_name
        self.coordinator_agent_id = coordinator_agent_id

        # Attach the shared services the functional agents will look up.
        self.user_db = UserDB()
        self.bsmdb = BSMDB()
        self.profile_learner = ProfileLearner(learning_config)
        context.host.attach_service("user-db", self.user_db)
        context.host.attach_service("bsmdb", self.bsmdb)
        context.host.attach_service("profile-learner", self.profile_learner)
        context.host.attach_service("buyer-agent-server", self)

        self.recommendations = RecommendationService(
            self.user_db, catalog if catalog is not None else ItemCatalogView([]),
            similarity_config, now=lambda: context.now,
            profile_learner=self.profile_learner,
            neighbor_shards=neighbor_shards,
            shard_routing=shard_routing,
            scoring_backend=scoring_backend,
        )
        context.host.attach_service("recommendation-service", self.recommendations)

        self.bsma: Optional[BuyerServerManagementAgent] = None
        self.httpa: Optional[HttpAgent] = None
        self.batch_refreshes = 0
        self.refresh_skips = 0
        self._refresh_task: Optional[RecurringCallback] = None
        self.replication: Optional[ReplicationManager] = None

    # -- replication ----------------------------------------------------------------

    def enable_replication(
        self, wal_truncate_threshold: int = 0
    ) -> ReplicationManager:
        """Attach a :class:`~repro.ecommerce.replication.ReplicationManager`.

        From this point every durable UserDB mutation (and every in-place
        profile learning update) is appended to this server's write-ahead
        log; wire actual peers with
        :meth:`~repro.ecommerce.replication.ReplicationManager.replicate_to`.
        With a positive ``wal_truncate_threshold`` the log is bounded:
        once every peer has acknowledged that many entries beyond the last
        truncation point, the manager snapshots and truncates the
        acknowledged prefix.  Idempotent in effect but calling twice is a
        programming error.
        """
        if self.replication is not None:
            raise ECommerceError(
                f"buyer agent server {self.name!r} already has replication enabled"
            )
        self.replication = ReplicationManager(
            self, truncate_threshold=wal_truncate_threshold
        )
        return self.replication

    # -- Figure 4.1 bootstrap -------------------------------------------------------

    def bootstrap(self) -> None:
        """Ask the coordinator to set this host up as a buyer agent server.

        Runs the full Figure 4.1 protocol: the request travels to the CA, the
        CA creates and dispatches a BSMA here, and the BSMA creates the PA and
        HttpA and initialises the databases on arrival.
        """
        if self.bsma is not None:
            raise RegistrationError(f"buyer agent server {self.name!r} is already bootstrapped")
        reply = self.context.send_message(
            self.coordinator_agent_id,
            _creation_request(self.name),
        )
        if not reply.ok:
            raise RegistrationError(f"coordinator refused to create buyer server: {reply.error}")
        bsma_id = reply.require("bsma_id")
        self.bsma = self.context.get_local(bsma_id)
        self.httpa = self.context.get_local(self.bsma.httpa_id)

    @property
    def is_ready(self) -> bool:
        return self.bsma is not None and self.bsma.initialized

    # -- direct handles used by sessions, tests and benchmarks -------------------------

    def http_proxy(self):
        if self.httpa is None:
            raise ECommerceError(f"buyer agent server {self.name!r} has not been bootstrapped")
        return self.httpa.proxy

    def online_users(self) -> List[str]:
        return self.bsmdb.online_user_ids()

    def register_consumer(self, user_id: str, display_name: str = "") -> None:
        """Register a consumer through the normal HttpA path."""
        reply = self.http_proxy().request(
            MessageKinds.REGISTER, sender="browser",
            user_id=user_id, display_name=display_name,
        )
        if not reply.ok:
            raise ECommerceError(reply.error)

    # -- periodic batch refresh ----------------------------------------------------

    def refresh_recommendations(self, k: int = 10) -> Dict[str, List[Recommendation]]:
        """Batch-recompute recommendation lists for the current community.

        Refreshes every online consumer (falling back to every registered
        consumer while nobody is logged in) through the shared
        :meth:`RecommendationService.batch_refresh`, so the next login can be
        served a precomputed list instantly.
        """
        users = self.bsmdb.online_user_ids() or self.user_db.user_ids
        results = self.recommendations.batch_refresh(users, k=k)
        self.batch_refreshes += 1
        return results

    def maybe_refresh_recommendations(
        self, interval_ms: float, k: int = 10
    ) -> bool:
        """Run :meth:`refresh_recommendations` when the interval has elapsed.

        This is the periodic driver: scenario loops (and any external ticker)
        call it once per step and the refresh fires at most every
        ``interval_ms`` of simulated time.  Returns True when a refresh ran.
        """
        if interval_ms < 0:
            raise ECommerceError("refresh interval cannot be negative")
        last = self.recommendations.last_batch_refresh_at
        if last is not None and self.context.now - last < interval_ms:
            return False
        self.refresh_recommendations(k=k)
        return True

    # -- scheduler-driven refresh ---------------------------------------------------

    @property
    def refresh_scheduled(self) -> bool:
        """Whether a scheduled periodic refresh is currently armed."""
        return self._refresh_task is not None and not self._refresh_task.cancelled

    def start_periodic_refresh(self, interval_ms: float, k: int = 10) -> RecurringCallback:
        """Drive :meth:`refresh_recommendations` from the platform scheduler.

        Unlike :meth:`maybe_refresh_recommendations` — which relies on a
        scenario loop polling it — this registers a real recurring simulated
        event that fires every ``interval_ms``, re-arms itself, and records a
        ``recommendation.scheduled-refresh`` event per firing.  While the
        host is crashed the tick is skipped (recorded as
        ``recommendation.refresh-skipped``) but the recurrence stays armed,
        so refreshes resume by themselves after recovery.
        """
        if interval_ms <= 0:
            raise ECommerceError("refresh interval must be positive")
        if self.refresh_scheduled:
            raise ECommerceError(
                f"buyer agent server {self.name!r} already has a scheduled refresh"
            )
        log = self.context.transport.event_log

        def fire() -> None:
            if not self.context.host.is_running:
                self.refresh_skips += 1
                log.record(
                    self.context.now, "recommendation.refresh-skipped",
                    self.name, self.name, reason="host-down",
                )
                return
            results = self.refresh_recommendations(k=k)
            log.record(
                self.context.now, "recommendation.scheduled-refresh",
                self.name, self.name,
                consumers=len(results), user_ids=sorted(results),
            )

        self._refresh_task = self.context.host.scheduler.call_every(
            interval_ms, fire, label=f"refresh.{self.name}"
        )
        return self._refresh_task

    def stop_periodic_refresh(self) -> None:
        """Cancel the scheduled periodic refresh (no-op when none is armed)."""
        if self._refresh_task is not None:
            self._refresh_task.cancel()
            self._refresh_task = None


@dataclass(frozen=True)
class FleetQueryResult:
    """One fleet-wide similar-consumer query with its fan-out accounting.

    ``neighbors`` is the exactly-merged top-k over every shard that
    responded.  ``unreachable_shards`` names the servers that could not be
    reached **and** had no live replica to answer for them; a shard whose
    primary was unreachable but whose freshest live replica answered instead
    appears in ``stale_shards`` (server name → replica lag in WAL entries,
    relative to the primary's log when it is still running, else to the
    freshest live replica).  Either kind of gap marks the answer
    :attr:`degraded`: correct for the reachable community, possibly stale —
    or silent — about the rest.
    """

    neighbors: List[Tuple[str, float]]
    shard_latencies_ms: Dict[str, float] = field(default_factory=dict)
    unreachable_shards: Tuple[str, ...] = ()
    stale_shards: Dict[str, int] = field(default_factory=dict)
    #: Stale-answered shards whose read-repair nudge brought the answering
    #: replica fully up to date (lag 0) immediately after the query.
    repaired_shards: Tuple[str, ...] = ()
    #: Shards a tail-latency hedge was launched against (the slowest
    #: primary-answered shard, once its round trip exceeded the fan-out's
    #: configured latency percentile); the subset whose hedge *won* — the
    #: replica answered before the slow primary would have, so the shard
    #: was charged ``delay + hedge`` instead — is in ``hedge_won_shards``.
    hedged_shards: Tuple[str, ...] = ()
    hedge_won_shards: Tuple[str, ...] = ()
    latency_ms: float = 0.0
    merge_ms: float = 0.0

    @property
    def unreachable_count(self) -> int:
        """How many shards could not be reached *and* had no replica answer.

        Replica-answered shards are not counted here — they contributed to
        the merge and are reported separately in :attr:`stale_shards`.
        """
        return len(self.unreachable_shards)

    @property
    def degraded(self) -> bool:
        """True when at least one shard was answered from a replica or not at all."""
        return bool(self.unreachable_shards or self.stale_shards)

    @property
    def repaired(self) -> bool:
        """True when at least one stale-answered shard was caught up (lag 0).

        Per-shard detail lives in :attr:`repaired_shards`; compare it
        against :attr:`stale_shards` when "every consulted replica is now
        fresh" is the question.
        """
        return bool(self.repaired_shards)


@dataclass
class FleetRefreshReport:
    """What one fleet-wide batch refresh actually covered — and what it missed.

    ``results`` maps every refreshed consumer to their new recommendation
    list.  ``skipped_consumers`` were assigned to servers that were down at
    refresh time (their lists simply go stale until the next tick).
    ``missing_consumers`` are worse: the fleet's assignment maps them to a
    *live* server that does not know them — state lost to a mid-refresh
    crash or an un-reconciled failover — reported per consumer as
    ``fleet.refresh-consumer-missing`` events (mirroring
    ``fleet.consumer-lost``) instead of silently dropped from the dict.
    """

    results: Dict[str, List[Recommendation]] = field(default_factory=dict)
    skipped_consumers: List[str] = field(default_factory=list)
    missing_consumers: List[str] = field(default_factory=list)
    skipped_servers: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True when every assigned consumer was actually refreshed."""
        return not self.skipped_consumers and not self.missing_consumers


class BuyerServerFleet:
    """N buyer agent servers each owning a shard of the consumer community.

    The paper's architecture has many buyer agent servers, each "servicing a
    consumer community" (§3.2).  The fleet is the coordinator-side view of
    that: consumers are routed to exactly one server at registration (stable
    consumer-hash placement), similar-user queries fan out to every live
    server's neighbor index and merge with :func:`repro.core.sharding.merge_topk`
    (score-identical to one server holding everyone), and the periodic
    recommendation refresh is one scheduled event that refreshes each
    server's *currently assigned* consumers — so a consumer that migrated
    servers mid-interval is refreshed exactly once, by its new owner.

    Failure handling has two strategies, both replica-honest (zero reads
    against the dead host's memory):

    - **promotion** (the default whenever a live replica exists): the
      freshest replica holder is *promoted* to primary for every shard the
      dead server owned.  It replays its replica — an exact prefix of the
      dead primary's history — into its own live UserDB through the
      notifying mutation methods (so its provider-backed neighbor index
      picks the adopted consumers up, and its own WAL streams their history
      onward to its replica peers), the fleet's shard→owner map is updated
      in place (**no consumer re-registration, no assignment churn**), the
      coordinator's shard map follows, survivors that replicated *to* the
      dead host are retargeted to a new live ring successor (so the dead
      peer's frozen acknowledgement stops blocking WAL truncation), and the
      dead primary's retired ``replication.lag.*`` gauges are removed.
      Since the freshest replica already lives on the promoted server, no
      per-consumer state crosses the network — the cheap failover the
      ROADMAP asked for.
    - **drain** (``strategy="drain"``, or automatically when no live replica
      exists): the PR-3 hand-off — each consumer is restored on a
      hash-placed surviving server, from replicas when any survive
      (``use_replicas`` keeps its PR-3 meaning), else from the dead host's
      memory (legacy, explicit opt-in via ``use_replicas=False``).

    Either way, consumers whose state never reached a live replica are
    reported lost, never resurrected empty.  A recovered server should be
    reconciled with :meth:`handle_server_recovery`, which purges the stale
    copies of the consumers the fleet no longer maps to it (their current
    owners keep them; at any instant exactly one server owns a consumer)
    and discards replicas for primaries that no longer stream to it.  After
    a promotion, shard ownership stays with the promoted server — the
    recovered host rejoins as replica capacity (and as a promotion target
    for future failures) rather than clawing its shard back.

    Placement is always the stable consumer hash: category routing cannot
    apply here because consumers are placed at registration, before their
    profile has any categories, and the fleet deliberately never moves a
    consumer just because their tastes drifted (server-level migration hands
    off databases, far too heavy for a learning tick — see ROADMAP).
    Category routing remains available *inside* each server's
    :class:`~repro.core.sharding.ShardedNeighborIndex`, where migration is a
    cheap re-index.
    """

    def __init__(
        self,
        servers: List[BuyerAgentServer],
        coordinator=None,
        hedge_delay_percentile: Optional[float] = None,
        scoring_backend: Optional[str] = None,
    ) -> None:
        if not servers:
            raise ECommerceError("a buyer server fleet needs at least one server")
        self.servers = list(servers)
        self._by_name: Dict[str, BuyerAgentServer] = {s.name: s for s in self.servers}
        if len(self._by_name) != len(self.servers):
            raise ECommerceError("buyer server names must be unique within a fleet")
        #: Optional :class:`~repro.ecommerce.coordinator.CoordinatorServer`
        #: handle; when wired, promotions update the CA's shard map in place
        #: and elastic topology changes sync the versioned map to the CA.
        self.coordinator = coordinator
        #: Tail-latency hedging for :meth:`query_similar` — ``None`` (never
        #: hedge, byte-identical to the unhedged fan-out) or a percentile in
        #: ``(0, 1]`` after which the slowest shard gets a replica hedge.
        self.hedge_delay_percentile = hedge_delay_percentile
        #: Scoring kernel backend for fleet-side index builds (replica
        #: answers, hedges) — threaded from ``PlatformConfig.scoring_backend``
        #: so fan-out scoring uses the same kernel the servers were built
        #: with instead of reaching into each server's private config.
        self.scoring_backend = resolve_backend(
            scoring_backend
            if scoring_backend is not None
            else self.servers[0].recommendations.scoring_backend
        )
        self.router = ShardRouter(len(self.servers), "hash")
        #: The versioned single source of truth for shard → owner: one base
        #: shard per founding server (identity placement), epoch bumped on
        #: every promotion, handback and split.  The base router above is
        #: deliberately frozen at founding size — consumer hash placement
        #: stays stable while the *map* re-cuts ownership at runtime.
        self.shard_map = ShardMap([s.name for s in self.servers])
        self.shard_map.subscribe(self._on_shard_map_change)
        #: Names of servers decommissioned by the autoscaler: still present
        #: in ``servers`` (their Host objects may be stopped) but never
        #: eligible as routing targets, replication successors or promotion
        #: candidates until re-added.
        self.retired: set = set()
        self._assignment: Dict[str, int] = {}
        self._refresh_task: Optional[RecurringCallback] = None
        self.scheduled_refreshes = 0
        self.migrated_consumers = 0
        self.lost_consumers = 0
        self.promotions = 0
        self.promoted_consumers = 0
        self.handbacks = 0
        self.splits = 0
        self.transferred_consumers = 0

    # -- routing --------------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return self.shard_map.num_shards

    def shard_of(self, user_id: str) -> int:
        """The shard owning ``user_id``, routing it first if never seen."""
        if user_id not in self._assignment:
            self._assignment[user_id] = self._route(user_id)
        return self._assignment[user_id]

    def owner_of_shard(self, shard: int) -> BuyerAgentServer:
        """The server currently serving ``shard`` (identity until a promotion)."""
        return self._by_name[self.shard_map.owner_of(shard)]

    def shards_of(self, server: BuyerAgentServer) -> List[int]:
        """Every shard ``server`` currently serves (empty for retired hosts)."""
        return self.shard_map.shards_of(server.name)

    def _route(self, user_id: str) -> int:
        """Initial placement: stable consumer hash, descended through splits.

        The base router (frozen at founding fleet size) gives the consumer's
        stable hash shard; the shard map then replays any splits of that
        shard, so a consumer registering mid-split lands on exactly the
        shard the migration loop would have moved them to.
        """
        shard = self.shard_map.route(user_id, self.router.shard_for_user(user_id))
        if self._is_live(shard):
            return shard
        return self._fallback_shard(user_id, excluding=(shard,))

    def _fallback_shard(self, user_id: str, excluding: Iterable[int]) -> int:
        """A live shard for ``user_id``, skipping ``excluding``.

        Raises :class:`~repro.errors.FleetUnavailableError` when every
        candidate shard's owning server is down — the caller gets a clear
        fleet-is-down signal instead of a request silently routed to (and
        then mysteriously failing on) a dead host.
        """
        excluded = set(excluding)
        live = [
            index for index in range(self.num_shards)
            if index not in excluded and self._is_live(index)
        ]
        if not live:
            raise FleetUnavailableError(
                "every buyer agent server is down; no live shard can take the "
                "consumer"
            )
        return live[self.router.shard_for_user(user_id) % len(live)]

    def _is_live(self, shard: int) -> bool:
        return self.owner_of_shard(shard).context.host.is_running

    def server_for(self, user_id: str) -> BuyerAgentServer:
        """The buyer agent server currently serving ``user_id``."""
        return self.owner_of_shard(self.shard_of(user_id))

    def consumers_of(self, shard: int) -> List[str]:
        """The consumers currently assigned to ``shard`` (sorted)."""
        return sorted(
            user_id for user_id, owner in self._assignment.items() if owner == shard
        )

    def consumers_served_by(self, server: BuyerAgentServer) -> List[str]:
        """The consumers across every shard ``server`` serves (sorted)."""
        shards = set(self.shards_of(server))
        return sorted(
            user_id
            for user_id, shard in self._assignment.items()
            if shard in shards
        )

    def shard_sizes(self) -> List[int]:
        sizes = [0] * self.num_shards
        for owner in self._assignment.values():
            sizes[owner] += 1
        return sizes

    # -- consumer entry points ------------------------------------------------------

    def register_consumer(self, user_id: str, display_name: str = "") -> BuyerAgentServer:
        """Register ``user_id`` with its routed server and return that server."""
        server = self.server_for(user_id)
        server.register_consumer(user_id, display_name)
        return server

    def is_registered(self, user_id: str) -> bool:
        """Whether ``user_id`` is registered with its serving server.

        When the serving server is crashed the answer comes from its live
        replicas — never from the dead host's memory (the same rule every
        failover and query path follows).
        """
        shard = self._assignment.get(user_id)
        if shard is None:
            return False
        owner = self.owner_of_shard(shard)
        if owner.context.host.is_running:
            return owner.user_db.is_registered(user_id)
        return any(
            state.db.is_registered(user_id)
            for _, state in self._replica_holders(owner)
        )

    # -- fan-out query --------------------------------------------------------------

    def find_similar(
        self,
        user_id: str,
        category: Optional[str] = None,
        config: Optional[SimilarityConfig] = None,
    ) -> List[Tuple[str, float]]:
        """Similar consumers across the whole fleet, exactly merged.

        Thin wrapper over :meth:`query_similar` returning just the merged
        neighbour list.

        .. deprecated:: client lookups belong on
           :meth:`repro.api.PlatformGateway.find_similar`, whose envelope
           carries the degraded/stale provenance this wrapper discards;
           platform-internal callers should use :meth:`query_similar`.
        """
        warnings.warn(
            "BuyerServerFleet.find_similar() is a legacy entry point; issue "
            "client lookups through PlatformGateway.find_similar() or use "
            "query_similar() for the full fan-out report",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.query_similar(user_id, category=category, config=config).neighbors

    def query_similar(
        self,
        user_id: str,
        category: Optional[str] = None,
        config: Optional[SimilarityConfig] = None,
    ) -> "FleetQueryResult":
        """Asynchronous fan-out: all shard RPCs dispatched at once.

        The target profile is loaded from its owning server, which then
        issues one RPC *per live server concurrently*: the simulated clock is
        charged ``max`` of the per-shard round-trip latencies (request leg +
        response leg through the network model) plus a small merge cost —
        not the sum a sequential visit would pay.  Per-shard timings land in
        ``platform.metrics`` (``fleet.fanout.shard.<server>.latency_ms``
        timers plus the ``fleet.fanout.latency_ms`` total).

        Shards that cannot answer — crashed hosts, partitioned or cut links,
        transfers dropped by the loss model — get **quorum-aware degraded
        semantics**: when the unreachable primary has a live replica, its
        shard is answered from the *freshest* replica holder (a brute-force
        scan of the replica's shadow profiles — exact over the replicated
        prefix) and reported in :attr:`FleetQueryResult.stale_shards` with
        the replica's lag; only shards with no replica either end up in
        :attr:`FleetQueryResult.unreachable_shards` (and the
        ``fleet.fanout.unreachable_shards`` counter).  Either way the
        response is marked :attr:`~FleetQueryResult.degraded` and the merge
        runs over the answers that arrived.  With every server reachable the
        merged list equals one index over the union of all UserDBs, byte for
        byte.  A target consumer whose own server is crashed is resolved
        from that server's freshest replica too — zero reads against dead
        memory.
        """
        owner = self.server_for(user_id)
        config = config or owner.recommendations.similarity_config
        # Resolve the target profile without touching crashed memory: a dead
        # owner's consumer is read from the freshest live replica instead.
        if owner.context.host.is_running:
            origin = owner
            target = owner.user_db.profile(user_id)
        else:
            holders = self._replica_holders(owner)
            source = next(
                (
                    (server, state)
                    for server, state in holders
                    if state.db.is_registered(user_id)
                ),
                None,
            )
            if source is None:
                raise ECommerceError(
                    f"server {owner.name!r} is down and no live replica knows "
                    f"consumer {user_id!r}"
                )
            origin = source[0]
            target = source[1].db.profile(user_id)
        transport = origin.context.transport
        network = transport.network
        clock = transport.scheduler.clock

        per_shard: List[Optional[List[Tuple[str, float]]]] = []
        shard_positions: Dict[str, int] = {}
        shard_latencies: Dict[str, float] = {}
        unreachable: List[str] = []
        stale: Dict[str, int] = {}
        stale_holders: Dict[str, str] = {}
        for server in self.servers:
            # Fan out to each distinct *owning* server once, in fleet-list
            # order (exactly the pre-ShardMap iteration order): a server
            # holding several shards answers for all of them in one RPC, and
            # retired hosts own nothing, so they are skipped for free.
            if not self.shard_map.shards_of(server.name):
                continue
            ranked: Optional[List[Tuple[str, float]]] = None
            latency = 0.0
            if server.context.host.is_running:
                ranked = server.recommendations.neighbor_index.find_similar(
                    target, category=category, config=config
                )
                try:
                    latency = network.round_trip_latency(
                        origin.name,
                        server.name,
                        FANOUT_REQUEST_BYTES,
                        FANOUT_BYTES_PER_RESULT * len(ranked),
                    )
                except NetworkError:
                    # Down link, partition or dropped transfer: the shard did
                    # the work but the response never arrived — a timeout,
                    # not a crash.  Fall through to the replica answer.
                    ranked = None
            if ranked is None:
                fallback = self._stale_shard_answer(
                    server, target, category, config, origin
                )
                if fallback is None:
                    unreachable.append(server.name)
                    per_shard.append(None)
                    continue
                ranked, latency, lag, holder_name = fallback
                stale[server.name] = lag
                stale_holders[server.name] = holder_name
            shard_latencies[server.name] = latency
            per_shard.append(ranked)
            shard_positions[server.name] = len(per_shard) - 1
            transport.metrics.timer(
                f"fleet.fanout.shard.{server.name}.latency_ms"
            ).record(latency)

        hedged: Tuple[str, ...] = ()
        hedge_won: Tuple[str, ...] = ()
        if self.hedge_delay_percentile is not None:
            hedged, hedge_won = self._hedge_slowest(
                target,
                category,
                config,
                origin,
                per_shard,
                shard_positions,
                shard_latencies,
                stale,
                stale_holders,
                transport,
            )

        merge_ms = FANOUT_MERGE_COST_PER_CANDIDATE_MS * sum(
            len(ranked) for ranked in per_shard if ranked is not None
        )
        total_ms = max(shard_latencies.values(), default=0.0) + merge_ms
        clock.advance_by(total_ms)

        transport.metrics.counter("fleet.fanout.queries").increment()
        transport.metrics.timer("fleet.fanout.latency_ms").record(total_ms)
        if unreachable:
            transport.metrics.counter("fleet.fanout.unreachable_shards").increment(
                len(unreachable)
            )
        if stale:
            transport.metrics.counter("fleet.fanout.stale_shards").increment(
                len(stale)
            )
        # The extra hedging kwargs are recorded only when hedging is armed:
        # the default-off event payloads stay byte-identical to the
        # unhedged fan-out.
        hedge_fields = (
            {"hedged": list(hedged), "hedge_won": list(hedge_won)}
            if self.hedge_delay_percentile is not None
            else {}
        )
        transport.event_log.record(
            clock.now,
            "fleet.fanout-query",
            origin.name,
            origin.name,
            user_id=user_id,
            shard_latencies=dict(shard_latencies),
            unreachable=list(unreachable),
            stale=dict(stale),
            latency_ms=total_ms,
            **hedge_fields,
        )
        repaired = self._read_repair(stale, stale_holders, transport)
        return FleetQueryResult(
            neighbors=merge_topk(per_shard, config.top_k),
            shard_latencies_ms=shard_latencies,
            unreachable_shards=tuple(unreachable),
            stale_shards=stale,
            repaired_shards=repaired,
            hedged_shards=hedged,
            hedge_won_shards=hedge_won,
            latency_ms=total_ms,
            merge_ms=merge_ms,
        )

    def _hedge_slowest(
        self,
        target,
        category: Optional[str],
        config: SimilarityConfig,
        origin: BuyerAgentServer,
        per_shard: List[Optional[List[Tuple[str, float]]]],
        shard_positions: Dict[str, int],
        shard_latencies: Dict[str, float],
        stale: Dict[str, int],
        stale_holders: Dict[str, str],
        transport,
    ) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        """Hedge the slowest primary-answered shard of one fan-out.

        The tail-at-scale move (Dean & Barroso): once the slowest shard's
        round trip exceeds the ``hedge_delay_percentile``-th percentile of
        this fan-out's latencies, a *hedge* — the same question, asked of
        that shard's freshest live replica holder — is launched after that
        percentile delay.  Whichever answer would arrive first is used, so
        the shard is charged ``min(primary, delay + hedge)``; a winning
        hedge replaces the shard's ranking with the replica's (its lag, if
        any, is folded into ``stale``/read-repair exactly like a
        replica-answered shard).  Mutates the fan-out accounting in place
        and returns ``(hedged, hedge_won)`` shard-name tuples.

        Only shards answered by their *primary* are candidates — a
        stale-answered shard already came from a replica, and an
        unreachable shard has nothing to race.  A hedge whose transfer the
        network drops simply loses (the primary answer stands); the hedge
        RPC itself never advances the clock, because it runs inside the
        same concurrent fan-out window the primaries occupy.
        """
        candidates = {
            name: latency
            for name, latency in shard_latencies.items()
            if name not in stale
        }
        if len(shard_latencies) < 2 or not candidates:
            return (), ()
        delay = _latency_percentile(
            sorted(shard_latencies.values()), self.hedge_delay_percentile
        )
        # Deterministic slowest pick: max latency, name order breaking ties.
        slowest = max(sorted(candidates), key=lambda name: candidates[name])
        primary_latency = candidates[slowest]
        if primary_latency <= delay:
            return (), ()
        server = next(s for s in self.servers if s.name == slowest)
        holders = self._replica_holders(server)
        if not holders:
            return (), ()
        holder, state = holders[0]
        transport.metrics.counter("fleet.fanout.hedges").increment()
        # The replica's lazily built neighbor index answers byte-identically
        # to brute-forcing its shadow profiles (the PR-1 guarantee), while
        # re-indexing only the consumers the WAL touched since the last read.
        # The fleet's own kernel backend (from PlatformConfig) scores it —
        # score-identical across backends, so hedge wins stay byte-stable
        # under REPRO_NO_NUMPY.
        ranked = state.neighbor_index(
            backend=self.scoring_backend
        ).find_similar(target, category=category, config=config)
        try:
            hedge_latency = origin.context.transport.network.round_trip_latency(
                origin.name,
                holder.name,
                FANOUT_REQUEST_BYTES,
                FANOUT_BYTES_PER_RESULT * len(ranked),
            )
        except NetworkError:
            return (slowest,), ()
        effective = delay + hedge_latency
        if effective >= primary_latency:
            return (slowest,), ()
        transport.metrics.counter("fleet.fanout.hedge_wins").increment()
        shard_latencies[slowest] = effective
        per_shard[shard_positions[slowest]] = ranked
        lag = (
            server.replication.log.last_seq - state.applied_seq
            if server.replication is not None
            else 0
        )
        if lag > 0:
            stale[slowest] = lag
            stale_holders[slowest] = holder.name
        return (slowest,), (slowest,)

    def _read_repair(
        self,
        stale: Dict[str, int],
        stale_holders: Dict[str, str],
        transport,
    ) -> Tuple[str, ...]:
        """Nudge anti-entropy for every stale-answered shard's replica.

        A stale answer already knows which replica served it and how far
        behind it was; instead of waiting for the next scheduled
        anti-entropy tick, the query piggy-backs an immediate catch-up
        shipment from the primary to that holder
        (:meth:`~repro.ecommerce.replication.ReplicationManager.catch_up`),
        bounding staleness instead of just reporting it.  Shards whose
        holder is fully caught up afterwards (lag 0) are returned — and
        surfaced as ``repaired`` provenance.  A crashed primary cannot ship,
        so its shard stays unrepaired until failover or recovery; a
        still-partitioned link leaves the entries deferred as usual.
        """
        repaired: List[str] = []
        for primary_name, holder_name in stale_holders.items():
            primary = next(
                (server for server in self.servers if server.name == primary_name),
                None,
            )
            if primary is None or not primary.context.host.is_running:
                continue
            manager = primary.replication
            if manager is None or not any(
                peer.name == holder_name for peer in manager.peers
            ):
                continue
            lag_before = stale[primary_name]
            lag_after = manager.catch_up(holder_name)
            transport.event_log.record(
                transport.scheduler.clock.now,
                "fleet.read-repair",
                primary_name,
                holder_name,
                lag_before=lag_before,
                lag_after=lag_after,
            )
            if lag_after == 0:
                repaired.append(primary_name)
                transport.metrics.counter("fleet.fanout.read_repairs").increment()
        return tuple(repaired)

    def _stale_shard_answer(
        self,
        server: BuyerAgentServer,
        target,
        category: Optional[str],
        config: SimilarityConfig,
        origin: BuyerAgentServer,
    ) -> Optional[Tuple[List[Tuple[str, float]], float, int, str]]:
        """Answer an unreachable server's shard from its freshest live replica.

        Returns ``(ranked, latency_ms, lag, holder_name)`` or None when no
        live replica can be reached either.  The ranking comes from the
        replica's lazily built neighbor index over its shadow profiles —
        byte-identical to a brute-force scan with the exact fan-out sort key
        (and hence, for a fully caught-up replica, to the primary's answer),
        but re-indexing only consumers the WAL touched since the last read.  ``lag`` is the replica's distance behind the primary's
        WAL when the primary host is merely partitioned (its log is
        readable), else behind the freshest live replica — the best
        staleness bound reconstructable without touching dead memory.
        """
        if not self.consumers_served_by(server):
            # Nothing is assigned to this server's shards any more — its
            # community was drained to survivors, whose live shards already
            # answer for every consumer.  Answering from the consumed
            # replica would score the drained consumers twice, with frozen
            # pre-drain state shadowing their live profiles.
            return None
        holders = self._replica_holders(server)
        if not holders:
            return None
        holder, state = holders[0]
        ranked = state.neighbor_index(
            backend=self.scoring_backend
        ).find_similar(target, category=category, config=config)
        try:
            latency = origin.context.transport.network.round_trip_latency(
                origin.name,
                holder.name,
                FANOUT_REQUEST_BYTES,
                FANOUT_BYTES_PER_RESULT * len(ranked),
            )
        except NetworkError:
            return None
        if server.context.host.is_running and server.replication is not None:
            lag = server.replication.log.last_seq - state.applied_seq
        else:
            lag = max(s.applied_seq for _, s in holders) - state.applied_seq
        return ranked, latency, lag, holder.name

    # -- scheduled fleet-wide refresh -----------------------------------------------

    def refresh_all(self, k: int = 10) -> "FleetRefreshReport":
        """Refresh every assigned consumer once, each on its serving server.

        Returns a :class:`FleetRefreshReport` rather than a bare dict:
        consumers assigned to a crashed server are reported as skipped, and
        consumers the assignment maps to a *live* server that does not know
        them — state lost to a mid-refresh crash — are reported as missing
        (``fleet.refresh-consumer-missing`` events, mirroring
        ``fleet.consumer-lost``) instead of silently dropped.
        """
        report = FleetRefreshReport()
        for server in self.servers:
            if not self.shards_of(server):
                continue  # retired host (its shards were promoted away)
            self._refresh_server(server, k, report)
        return report

    def _refresh_server(
        self, server: BuyerAgentServer, k: int, report: FleetRefreshReport
    ) -> Optional[List[str]]:
        """Refresh one serving server's assigned consumers into ``report``.

        Shared by :meth:`refresh_all` and the scheduled fleet tick so the
        missing-consumer reporting cannot drift between the two paths.
        Returns the refreshed user ids, or ``None`` when the server is down
        (its consumers recorded as skipped).
        """
        transport = self.servers[0].context.transport
        assigned = self.consumers_served_by(server)
        if not server.context.host.is_running:
            report.skipped_servers.append(server.name)
            report.skipped_consumers.extend(assigned)
            return None
        users = []
        for user_id in assigned:
            if server.user_db.is_registered(user_id):
                users.append(user_id)
            else:
                report.missing_consumers.append(user_id)
                transport.event_log.record(
                    transport.scheduler.clock.now,
                    "fleet.refresh-consumer-missing",
                    server.name,
                    server.name,
                    user_id=user_id,
                )
                transport.metrics.counter("fleet.refresh.missing").increment()
        if users:
            report.results.update(server.recommendations.batch_refresh(users, k=k))
            server.batch_refreshes += 1
        return users

    def start_periodic_refresh(self, interval_ms: float, k: int = 10) -> RecurringCallback:
        """One scheduled recurring event refreshing the whole fleet.

        The assignment and shard-ownership maps are read at fire time, so
        consumers that migrated shards since the last tick are refreshed
        exactly once, by their current owner — and consumers adopted by a
        promotion failover are refreshed by the promoted server from the
        next tick on, with no re-arming required.  Each firing records one
        ``recommendation.scheduled-refresh`` event per live serving server
        with the user ids it refreshed; a retired host (every shard promoted
        away) is neither refreshed nor counted as skipped.
        """
        if interval_ms <= 0:
            raise ECommerceError("refresh interval must be positive")
        if self._refresh_task is not None and not self._refresh_task.cancelled:
            raise ECommerceError("the fleet already has a scheduled refresh")
        scheduler = self.servers[0].context.host.scheduler
        log = self.servers[0].context.transport.event_log

        def fire() -> None:
            self.scheduled_refreshes += 1
            report = FleetRefreshReport()
            for server in self.servers:
                now = server.context.now
                if not self.shards_of(server):
                    continue  # retired host: nothing assigned, nothing skipped
                users = self._refresh_server(server, k, report)
                if users is None:
                    server.refresh_skips += 1
                    log.record(
                        now, "recommendation.refresh-skipped",
                        server.name, server.name, reason="host-down",
                    )
                    continue
                log.record(
                    now, "recommendation.scheduled-refresh",
                    server.name, server.name,
                    consumers=len(users), user_ids=users,
                )

        self._refresh_task = scheduler.call_every(
            interval_ms, fire, label="refresh.fleet"
        )
        return self._refresh_task

    def stop_periodic_refresh(self) -> None:
        if self._refresh_task is not None:
            self._refresh_task.cancel()
            self._refresh_task = None

    # -- failure handling / rebalancing ---------------------------------------------

    def migrate_consumer(self, user_id: str, target_shard: int) -> None:
        """Hand one consumer over to ``target_shard`` (profile + ratings).

        The source server's record is dropped (its provider-backed neighbor
        index forgets the consumer on next sync), so at any instant exactly
        one server owns the consumer — the invariant that makes fan-out
        merging and the no-double-refresh guarantee hold.
        """
        source_shard = self.shard_of(user_id)
        if source_shard == target_shard:
            return
        source = self.owner_of_shard(source_shard)
        if not source.user_db.is_registered(user_id):
            raise ECommerceError(f"consumer {user_id!r} is not registered with its shard")
        record = source.user_db.user(user_id)
        profile = source.user_db.profile(user_id)
        interactions = source.user_db.ratings.interactions_of(user_id)
        transactions = source.user_db.transactions_of(user_id)

        self._install_consumer(
            target_shard,
            record.display_name,
            record.registered_at,
            user_id,
            profile,
            interactions,
            transactions,
        )
        source.user_db.unregister(user_id)

    def _install_consumer(
        self,
        target_shard: int,
        display_name: str,
        registered_at: float,
        user_id: str,
        profile: Profile,
        interactions: Iterable,
        transactions: Iterable,
    ) -> None:
        """Write one consumer's durable state onto ``target_shard``.

        Writes go through the notifying UserDB methods, so when the target
        itself replicates, the adopted consumer's history streams onward to
        the target's own replica peers.
        """
        target = self.owner_of_shard(target_shard)
        target.user_db.register(user_id, display_name, timestamp=registered_at)
        target.user_db.store_profile(profile.copy())
        for interaction in interactions:
            target.user_db.record_interaction(interaction)
        for transaction in transactions:
            target.user_db.record_transaction(transaction)
        self._assignment[user_id] = target_shard
        self.migrated_consumers += 1

    # -- replica lookup ---------------------------------------------------------------

    def live_replica_holders(
        self, server: BuyerAgentServer
    ) -> List[Tuple[BuyerAgentServer, ReplicaState]]:
        """Public view of :meth:`_replica_holders` (freshest first).

        Used by the gateway's retry middleware to decide whether a crashed
        primary can be promoted around (an empty list means a retry cannot
        be saved by failover).
        """
        return self._replica_holders(server)

    def _replica_holders(self, dead: BuyerAgentServer) -> List[Tuple[BuyerAgentServer, ReplicaState]]:
        """Live servers hosting a replica of ``dead``, freshest first.

        This scans the *survivors* only: the dead server object is never
        dereferenced beyond its name, which is the whole point of the
        replica-based drain.  Replicas are exact prefixes of the primary's
        history, so ordering by ``applied_seq`` (descending; server order
        breaks ties) makes the first holder that knows a consumer also the
        one with that consumer's freshest state — with ``factor >= 2`` a
        lagging replica must never shadow a caught-up one.
        """
        holders: List[Tuple[BuyerAgentServer, ReplicaState]] = []
        for server in self.servers:
            if server is dead or not server.context.host.is_running:
                continue
            if server.replication is None:
                continue
            state = server.replication.hosted.get(dead.name)
            if state is not None:
                holders.append((server, state))
        return sorted(holders, key=lambda pair: -pair[1].applied_seq)

    def handle_server_failure(
        self,
        shard: int,
        use_replicas: Optional[bool] = None,
        strategy: Optional[str] = None,
    ) -> int:
        """Fail over the server serving ``shard``; return how many consumers moved.

        ``strategy`` picks the failover mode:

        - ``"promote"`` (the default whenever a live replica exists): the
          freshest replica holder adopts **every** shard the dead server
          served — replica replayed into its live UserDB, shard→owner map
          updated in place, zero per-consumer re-registration, zero network
          transfers for consumer state (the replica already lives on the
          promoted server).  See :meth:`_promote`.
        - ``"drain"``: the PR-3 per-consumer hand-off onto hash-placed
          survivors — from replicas when any survive, else (or with
          ``use_replicas=False``) the legacy direct-memory path.

        Consumers absent from every live replica (registered during a
        replication outage) are counted in :attr:`lost_consumers`, recorded
        as ``fleet.consumer-lost`` events and unassigned so they can
        register afresh.  ``use_replicas=True`` raises when no live replica
        exists; ``use_replicas=False`` forces the legacy memory drain.
        """
        if not 0 <= shard < self.num_shards:
            raise ECommerceError(f"{shard} is not a fleet shard")
        dead = self.owner_of_shard(shard)
        if dead.context.host.is_running:
            raise ECommerceError(
                f"server {dead.name!r} is still running; refusing to drain it"
            )
        holders = self._replica_holders(dead)
        if use_replicas is None:
            use_replicas = bool(holders)
        if use_replicas and not holders:
            raise ECommerceError(f"no live replica of {dead.name!r} to drain from")
        if strategy is None:
            strategy = "promote" if use_replicas else "drain"
        if strategy not in ("promote", "drain"):
            raise ECommerceError(
                f"unknown failover strategy {strategy!r}; expected 'promote' or 'drain'"
            )
        if strategy == "promote":
            if not use_replicas:
                raise ECommerceError(
                    "promotion failover needs a live replica; use strategy='drain' "
                    "for the direct-memory hand-off"
                )
            return self._promote(dead, holders)
        if use_replicas:
            return self._drain_from_replicas(dead, holders)
        return self._drain_from_memory(dead)

    def _drain_from_memory(self, dead: BuyerAgentServer) -> int:
        """Legacy direct-memory hand-off (explicit ``use_replicas=False``)."""
        shards = self.shards_of(dead)
        moved = 0
        for shard in shards:
            for user_id in self.consumers_of(shard):
                target = self._fallback_shard(user_id, excluding=shards)
                self.migrate_consumer(user_id, target)
                moved += 1
        return moved

    def _drain_from_replicas(
        self,
        dead: BuyerAgentServer,
        holders: List[Tuple[BuyerAgentServer, ReplicaState]],
    ) -> int:
        """PR-3 replica drain: hash-place each consumer on a survivor."""
        shards = self.shards_of(dead)
        transport = holders[0][0].context.transport
        moved = 0
        lost: List[str] = []
        for shard in shards:
            for user_id in self.consumers_of(shard):
                source = next(
                    (
                        (server, state)
                        for server, state in holders
                        if state.db.is_registered(user_id)
                    ),
                    None,
                )
                if source is None:
                    self._report_lost(dead, user_id, lost)
                    continue
                holder, state = source
                target_shard = self._fallback_shard(user_id, excluding=shards)
                record = state.db.user(user_id)
                transport.deliver(
                    holder.name,
                    self.owner_of_shard(target_shard).name,
                    "failover-drain",
                    payload_bytes=FANOUT_REQUEST_BYTES,
                )
                self._install_consumer(
                    target_shard,
                    record.display_name,
                    record.registered_at,
                    user_id,
                    state.db.profile(user_id),
                    state.db.ratings.interactions_of(user_id),
                    state.db.transactions_of(user_id),
                )
                moved += 1
        transport.event_log.record(
            transport.scheduler.clock.now,
            "fleet.failover-drain",
            dead.name,
            dead.name,
            moved=moved,
            lost=lost,
        )
        transport.metrics.counter("fleet.failover.drained").increment(moved)
        if lost:
            transport.metrics.counter("fleet.failover.lost").increment(len(lost))
        return moved

    def _report_lost(
        self, dead: BuyerAgentServer, user_id: str, lost: List[str]
    ) -> None:
        """One consumer whose state never reached a live replica: record loss.

        The consumer's registration died with the host (replication outage
        tail); they are unassigned so a fresh registration can route them to
        a live server rather than resurrecting them empty.
        """
        transport = self.servers[0].context.transport
        lost.append(user_id)
        self.lost_consumers += 1
        del self._assignment[user_id]
        transport.event_log.record(
            transport.scheduler.clock.now,
            "fleet.consumer-lost",
            dead.name,
            dead.name,
            user_id=user_id,
        )

    def _promote(
        self,
        dead: BuyerAgentServer,
        holders: List[Tuple[BuyerAgentServer, ReplicaState]],
    ) -> int:
        """Promote the freshest replica holder to primary for the dead server.

        The holder replays its replica — an exact prefix of the dead
        primary's history — into its **own** live UserDB through the
        notifying mutation methods, so its provider-backed neighbor index
        picks the adopted consumers up on the next sync and its own WAL
        streams their full history to its replica peers.  The shard→owner
        map (and the coordinator's shard map, when wired) is updated in
        place: assignments never change, nothing re-registers, and no
        consumer state crosses the network — the freshest replica already
        lives on the promoted server.  Afterwards the dead primary's
        replication stream is retired: its consumed replica is discarded,
        its frozen ``replication.lag.*`` gauges removed, and every survivor
        that replicated *to* the dead host is retargeted to a new live ring
        successor so the dead peer's acknowledgement stops blocking WAL
        truncation.
        """
        promoted, state = holders[0]
        transport = promoted.context.transport
        shards = self.shards_of(dead)

        adopted: List[str] = []
        lost: List[str] = []
        for shard in shards:
            for user_id in self.consumers_of(shard):
                if state.db.is_registered(user_id):
                    adopted.append(user_id)
                else:
                    self._report_lost(dead, user_id, lost)
        for user_id in adopted:
            record = state.db.user(user_id)
            promoted.user_db.register(
                user_id, record.display_name, timestamp=record.registered_at
            )
            promoted.user_db.store_profile(state.db.profile(user_id).copy())
            for interaction in state.db.ratings.interactions_of(user_id):
                promoted.user_db.record_interaction(interaction)
            for transaction in state.db.transactions_of(user_id):
                promoted.user_db.record_transaction(transaction)
            # Aggregate login history is durable replicated state too: restore
            # it through the notifying method so the promoted server's own
            # replication stream carries it onward.
            promoted.user_db.restore_login_stats(
                user_id, record.logins, record.last_login_at
            )

        # One atomic epoch bump for the whole takeover; the "promote" reason
        # tells the shard-map listener to skip the elastic CA sync — the
        # dedicated promote-shard message below already updates the CA, and
        # keeping that path unchanged keeps pre-elastic scenarios
        # byte-identical.
        self.shard_map.reassign(shards, promoted.name, reason="promote")
        if self.coordinator is not None:
            self.coordinator.promote_shard(dead.name, promoted.name, shards)

        # Retire the dead primary's replication stream: the consumed replica
        # goes (its state now lives in the promoted server's own UserDB and
        # streams through the promoted server's WAL), and the dead server's
        # frozen lag gauges go with it.
        if promoted.replication is not None:
            promoted.replication.discard_replica(dead.name)
        transport.metrics.remove_gauges_with_prefix(
            f"replication.lag.{dead.name}->"
        )
        self._retarget_replication(dead)

        self.promotions += 1
        self.promoted_consumers += len(adopted)
        transport.event_log.record(
            transport.scheduler.clock.now,
            "fleet.failover-promotion",
            dead.name,
            promoted.name,
            shards=shards,
            adopted=len(adopted),
            lost=lost,
        )
        transport.metrics.counter("fleet.failover.promoted").increment(len(adopted))
        if lost:
            transport.metrics.counter("fleet.failover.lost").increment(len(lost))
        return len(adopted)

    def _retarget_replication(self, dead: BuyerAgentServer) -> None:
        """Point survivors that replicated to ``dead`` at a new ring successor.

        A dead peer never acknowledges again, so leaving it wired would both
        freeze the survivor's WAL truncation (the truncation point is the
        minimum acknowledged sequence number) and leave the survivor one
        replica short.  Each affected survivor drops the dead peer and picks
        the next live server in ring order that is not already a peer; the
        new replica is bootstrapped from the survivor's snapshot (when its
        log was truncated) or its full log, synchronously when the network
        allows.  With no eligible replacement the survivor just drops the
        dead peer (documented degraded redundancy).
        """
        total = len(self.servers)
        for index, server in enumerate(self.servers):
            if server is dead or not server.context.host.is_running:
                continue
            if server.name in self.retired:
                continue
            manager = server.replication
            if manager is None or not any(peer is dead for peer in manager.peers):
                continue
            manager.remove_peer(dead.name)
            peer_names = {peer.name for peer in manager.peers}
            replacement = None
            for offset in range(1, total):
                candidate = self.servers[(index + offset) % total]
                if candidate is server or candidate is dead:
                    continue
                if candidate.name in peer_names or candidate.name in self.retired:
                    continue
                if not candidate.context.host.is_running:
                    continue
                if candidate.replication is None:
                    continue
                replacement = candidate
                break
            if replacement is not None:
                manager.replicate_to(replacement)
            if self.coordinator is not None:
                self.coordinator.register_replication(
                    server.name, [peer.name for peer in manager.peers]
                )

    def _rewire_recovered_replication(self, recovered: BuyerAgentServer) -> None:
        """Swap the recovered host back in as a replica target.

        The inverse of :meth:`_retarget_replication`: every live primary
        whose *ideal* first ring successor (the next live replication-enabled
        server in fleet order) is the recovered host — but which was
        retargeted to a stand-in while the host was down — retires its
        ring-farthest peer and streams to the recovered host again.  The new
        replica bootstraps through the normal shipping path (snapshot when
        the primary's log was truncated, full log otherwise), after which
        the recovered host hosts fresh replicas and is a viable promotion
        target for the next failure.  Primaries that still stream to the
        recovered host (the drain strategy never unwired them) are left
        untouched.
        """
        total = len(self.servers)
        for index, primary in enumerate(self.servers):
            if primary is recovered or not primary.context.host.is_running:
                continue
            if primary.name in self.retired:
                continue
            manager = primary.replication
            if manager is None:
                continue
            if any(peer is recovered for peer in manager.peers):
                continue
            ideal = next(
                (
                    candidate
                    for offset in range(1, total)
                    for candidate in (self.servers[(index + offset) % total],)
                    if candidate.context.host.is_running
                    and candidate.replication is not None
                    and candidate.name not in self.retired
                ),
                None,
            )
            if ideal is not recovered:
                continue
            if manager.peers:
                farthest = max(
                    manager.peers,
                    key=lambda peer: (self.servers.index(peer) - index) % total,
                )
                manager.remove_peer(farthest.name)
                if (
                    farthest.context.host.is_running
                    and farthest.replication is not None
                ):
                    # The stand-in's replica is orphaned the moment the
                    # stream moves; drop it now rather than letting frozen
                    # shadow state accumulate (a down stand-in purges its
                    # own orphans in handle_server_recovery).
                    farthest.replication.discard_replica(primary.name)
            manager.replicate_to(recovered)
            if self.coordinator is not None:
                self.coordinator.register_replication(
                    primary.name, [peer.name for peer in manager.peers]
                )

    def handle_server_recovery(self, shard: int) -> int:
        """Reconcile the founding server of base shard ``shard`` after recovery.

        Index-based compatibility wrapper: base shard ids and founding
        server positions coincide, so ``shard`` names the server that
        originally owned it.  :meth:`recover_server` is the object-based
        form (and the only one that can name a server added after founding).
        """
        if not 0 <= shard < len(self.servers):
            raise ECommerceError(f"{shard} is not a fleet shard")
        return self.recover_server(self.servers[shard])

    def recover_server(self, server: BuyerAgentServer) -> int:
        """Reconcile a recovered server with the post-failover state.

        While the server was down its consumers were drained or promoted
        away, but failover never touched the dead host's memory — so on
        recovery the host still holds stale copies.  This purges every
        consumer the fleet no longer maps to this server (via the notifying
        ``UserDB.unregister``, so the recovered server's own replicas drop
        them too), discards replicas hosted for primaries that no longer
        stream to it (their lag gauges were already retired at retarget
        time), and returns how many consumers were purged.  The host must
        be running again.  After a drain its shard is still its own, so new
        registrations flow to it immediately; after a promotion the shard
        stays with the promoted server and the recovered host rejoins as
        replica capacity: every live primary whose *ideal* ring successor
        is the recovered host swaps its ring-farthest peer back for it (the
        new replica bootstraps from the primary's snapshot or full log), so
        the ring converges to its original shape and the recovered host is
        again a promotion target for future failures.
        """
        if server not in self.servers:
            raise ECommerceError(f"server {server.name!r} is not in this fleet")
        if not server.context.host.is_running:
            raise ECommerceError(
                f"server {server.name!r} is not running; recover the host first"
            )
        stale = [
            user_id
            for user_id in server.user_db.user_ids
            if self._assignment.get(user_id) is None
            or self.owner_of_shard(self._assignment[user_id]) is not server
        ]
        for user_id in stale:
            server.user_db.unregister(user_id)
        if server.replication is not None:
            for primary in self.servers:
                if primary is server or primary.replication is None:
                    continue
                if primary.name not in server.replication.hosted:
                    continue
                if not any(peer is server for peer in primary.replication.peers):
                    # The primary was retargeted away while this host was
                    # down; the orphaned replica would only go staler.
                    server.replication.discard_replica(primary.name)
            self._rewire_recovered_replication(server)
        if stale:
            transport = server.context.transport
            transport.event_log.record(
                transport.scheduler.clock.now,
                "fleet.recovery-purge",
                server.name,
                server.name,
                purged=stale,
            )
        return len(stale)

    # -- elastic topology: handback, splitting, add/remove ----------------------------

    def _on_shard_map_change(self, shard_map: ShardMap, reason: str, shards) -> None:
        """Sync the CA's directory after an elastic epoch bump.

        Promotion bumps are excluded: the failover path already updates the
        CA through its dedicated ``promote-shard`` message, and skipping it
        here keeps every pre-elastic scenario byte-identical (no extra
        network traffic on the promotion path).
        """
        if self.coordinator is None or reason == "promote":
            return
        self.coordinator.sync_shard_map(
            shard_map.epoch,
            {shard: shard_map.owner_of(shard) for shard in shard_map.shard_ids()},
        )

    def transfer_shard(
        self, shard: int, target: BuyerAgentServer, kind: str = "handback"
    ) -> int:
        """Hand ``shard`` — every consumer on it — to ``target``, live.

        The routine-elasticity twin of promotion failover: both ends are
        healthy, so the transfer can be *clean*.  When both servers
        replicate, the target bootstraps from the PR-4 machinery — the
        source streams its WAL to the target (reusing an existing stream
        when the target is already a ring successor, else opening a
        temporary one bootstrapped from the source's snapshot), a
        synchronous catch-up drives the lag to zero, and the shard's
        consumers are replayed out of the *replica* into the target's live
        UserDB through the notifying mutation methods.  Without replication
        the state is read from the live source and charged to the network
        per consumer.  Ownership flips with one atomic epoch bump
        (:meth:`ShardMap.commit_migration`) only after every consumer is
        installed; until that instant the source answers every query, after
        it the target answers every query — no window where neither does.
        Returns how many consumers moved.
        """
        source = self.owner_of_shard(shard)
        if target.name not in self._by_name or self._by_name[target.name] is not target:
            raise ECommerceError(f"server {target.name!r} is not in this fleet")
        if target.name in self.retired:
            raise ECommerceError(f"server {target.name!r} is retired; re-add it first")
        if not target.context.host.is_running:
            raise ECommerceError(f"server {target.name!r} is not running")
        if source is target:
            return 0
        if not source.context.host.is_running:
            raise ECommerceError(
                f"server {source.name!r} is down; use handle_server_failure() — "
                "a handback needs a live source"
            )
        self.shard_map.begin_migration(shard, kind=kind, target=target.name)
        transport = source.context.transport
        reader = source.user_db
        temp_stream = False
        replicated = (
            source.replication is not None and target.replication is not None
        )
        if replicated:
            if not any(peer is target for peer in source.replication.peers):
                source.replication.replicate_to(target)
                temp_stream = True
            source.replication.catch_up(target.name)
            reader = target.replication.hosted[source.name].db
        consumers = self.consumers_of(shard)
        for user_id in consumers:
            record = reader.user(user_id)
            if not replicated:
                transport.deliver(
                    source.name, target.name, "shard-handback",
                    payload_bytes=FANOUT_REQUEST_BYTES,
                )
            target.user_db.register(
                user_id, record.display_name, timestamp=record.registered_at
            )
            target.user_db.store_profile(reader.profile(user_id).copy())
            for interaction in reader.ratings.interactions_of(user_id):
                target.user_db.record_interaction(interaction)
            for transaction in reader.transactions_of(user_id):
                target.user_db.record_transaction(transaction)
            target.user_db.restore_login_stats(
                user_id, record.logins, record.last_login_at
            )
        self.shard_map.commit_migration(shard)
        for user_id in consumers:
            source.user_db.unregister(user_id)
        if temp_stream:
            source.replication.remove_peer(target.name)
            target.replication.discard_replica(source.name)
        self.handbacks += 1
        self.transferred_consumers += len(consumers)
        self.migrated_consumers += len(consumers)
        transport.event_log.record(
            transport.scheduler.clock.now,
            "fleet.shard-handback",
            source.name,
            target.name,
            shard=shard,
            moved=len(consumers),
            epoch=self.shard_map.epoch,
        )
        transport.metrics.counter("fleet.elastic.handbacks").increment()
        transport.metrics.counter("fleet.elastic.transferred").increment(
            len(consumers)
        )
        return len(consumers)

    def split_shard(
        self, shard: int, target: Optional[BuyerAgentServer] = None
    ) -> "ShardSplit":
        """Begin splitting hot ``shard`` in two; returns the migration handle.

        A new child shard (id ``num_shards``, keeping ids dense) is created
        owned by ``target`` (default: the current owner — an in-place split
        that a later handback can move).  Membership is the deterministic
        :func:`~repro.core.shard_map.split_membership` cut over the
        consumer id, recorded in the shard map *before* any consumer moves:
        queries and new registrations route through the split from the
        first instant, while the returned :class:`ShardSplit` moves the
        existing movers one at a time — each move is atomic per consumer,
        so mid-split every consumer lives on exactly one server and fan-out
        answers stay byte-identical to a static reference fleet.
        """
        source = self.owner_of_shard(shard)
        if target is None:
            target = source
        if target.name not in self._by_name or self._by_name[target.name] is not target:
            raise ECommerceError(f"server {target.name!r} is not in this fleet")
        if target.name in self.retired:
            raise ECommerceError(f"server {target.name!r} is retired; re-add it first")
        if not target.context.host.is_running:
            raise ECommerceError(f"server {target.name!r} is not running")
        if not source.context.host.is_running:
            raise ECommerceError(
                f"server {source.name!r} is down; fail it over before splitting"
            )
        split_index = len(self.shard_map.splits_of(shard))
        movers = [
            user_id
            for user_id in self.consumers_of(shard)
            if split_membership(user_id, shard, split_index)
        ]
        child = self.shard_map.begin_split(shard, owner=target.name, source=source.name)
        transport = source.context.transport
        transport.event_log.record(
            transport.scheduler.clock.now,
            "fleet.shard-split-begin",
            source.name,
            target.name,
            parent=shard,
            child=child,
            movers=len(movers),
            epoch=self.shard_map.epoch,
        )
        return ShardSplit(self, parent=shard, child=child, movers=movers)

    def _move_consumer(self, user_id: str, target_shard: int) -> None:
        """Move one consumer to ``target_shard`` with full durable state.

        Like :meth:`migrate_consumer` plus the aggregate login history (a
        shard migration must lose nothing), and a pure re-label when source
        and target shard live on the same server — an in-place split moves
        no bytes at all.
        """
        source_shard = self.shard_of(user_id)
        if source_shard == target_shard:
            return
        source = self.owner_of_shard(source_shard)
        target = self.owner_of_shard(target_shard)
        if source is target:
            self._assignment[user_id] = target_shard
        else:
            record = source.user_db.user(user_id)
            target.user_db.register(
                user_id, record.display_name, timestamp=record.registered_at
            )
            target.user_db.store_profile(source.user_db.profile(user_id).copy())
            for interaction in source.user_db.ratings.interactions_of(user_id):
                target.user_db.record_interaction(interaction)
            for transaction in source.user_db.transactions_of(user_id):
                target.user_db.record_transaction(transaction)
            target.user_db.restore_login_stats(
                user_id, record.logins, record.last_login_at
            )
            self._assignment[user_id] = target_shard
            source.user_db.unregister(user_id)
        self.migrated_consumers += 1
        self.transferred_consumers += 1

    def add_server(self, server: BuyerAgentServer) -> None:
        """Join ``server`` to the fleet as shard-less capacity.

        The base router is deliberately untouched — existing consumers keep
        their stable hash placement; the new server takes load through
        :meth:`transfer_shard` or :meth:`split_shard` (normally driven by
        the autoscaler).  Re-adding a retired server just clears its
        retirement.
        """
        if server.name in self.retired and self._by_name.get(server.name) is server:
            self.retired.discard(server.name)
            return
        if server.name in self._by_name:
            raise ECommerceError(
                f"the fleet already has a server named {server.name!r}"
            )
        self.servers.append(server)
        self._by_name[server.name] = server

    def decommission_server(self, server: BuyerAgentServer) -> None:
        """Retire ``server`` from the fleet (it must own no shards).

        Every shard must have been transferred away first — this refuses to
        orphan consumers.  The server's replication streams are unwired in
        both directions: its outbound peers stop hosting its replicas, its
        anti-entropy task is cancelled, its hosted replicas are discarded,
        and every primary that streamed *to* it is retargeted to a live
        ring successor (same machinery a crash uses, minus the crash).  The
        name stays known to the fleet so :meth:`add_server` can re-join it.
        """
        if server.name not in self._by_name or self._by_name[server.name] is not server:
            raise ECommerceError(f"server {server.name!r} is not in this fleet")
        if server.name in self.retired:
            return
        owned = self.shard_map.shards_of(server.name)
        if owned:
            raise ECommerceError(
                f"server {server.name!r} still owns shards {owned}; transfer "
                "them before decommissioning"
            )
        self.retired.add(server.name)
        manager = server.replication
        if manager is not None:
            manager.stop_anti_entropy()
            for peer in list(manager.peers):
                manager.remove_peer(peer.name)
                if peer.replication is not None:
                    peer.replication.discard_replica(server.name)
            for primary_name in list(manager.hosted):
                manager.discard_replica(primary_name)
        self._retarget_replication(server)
        if self.coordinator is not None and manager is not None:
            self.coordinator.register_replication(server.name, [])
        transport = self.servers[0].context.transport
        transport.event_log.record(
            transport.scheduler.clock.now,
            "fleet.server-decommissioned",
            server.name,
            server.name,
            epoch=self.shard_map.epoch,
        )


class ShardSplit:
    """One in-flight live split: the migration loop as a first-class handle.

    Created by :meth:`BuyerServerFleet.split_shard`, which has already
    recorded the split in the shard map (so routing is split-aware before
    any consumer moves).  The handle then moves the movers — the consumers
    the deterministic membership cut sends to the child — in caller-sized
    steps, letting scenarios interleave queries, failures and traffic with
    the migration.  :meth:`finalize` commits the child shard steady once
    every mover has landed.

    The handle survives a crash of either owner mid-split: consumer moves
    and the final commit read the *current* owners through the shard map,
    so a promotion failover between steps simply redirects the remaining
    moves to the promoted server.  Movers lost to the failover (state that
    never reached a replica) are skipped — they are already counted and
    unassigned by the failover accounting.
    """

    def __init__(
        self,
        fleet: BuyerServerFleet,
        parent: int,
        child: int,
        movers: List[str],
    ) -> None:
        self.fleet = fleet
        self.parent = parent
        self.child = child
        self.pending: List[str] = list(movers)
        self.moved: List[str] = []
        self.finalized = False

    @property
    def done(self) -> bool:
        """True when every mover has landed on the child shard."""
        return not self.pending

    def step(self, count: int = 1) -> int:
        """Move up to ``count`` pending consumers; returns how many moved."""
        if self.finalized:
            raise ECommerceError("this split is already finalized")
        stepped = 0
        while self.pending and stepped < count:
            user_id = self.pending.pop(0)
            if self.fleet._assignment.get(user_id) != self.parent:
                # Lost to a mid-split failover (already reported) or moved
                # by other machinery; nothing left to move.
                continue
            self.fleet._move_consumer(user_id, self.child)
            self.moved.append(user_id)
            stepped += 1
        return stepped

    def run(self) -> int:
        """Move every remaining consumer and finalize; returns total moved."""
        moved = self.step(len(self.pending)) if self.pending else 0
        self.finalize()
        return moved

    def finalize(self) -> None:
        """Commit the child shard steady (requires every mover landed)."""
        if self.finalized:
            return
        if self.pending:
            raise ECommerceError(
                f"{len(self.pending)} consumers still pending; step() or run() "
                "the split to completion first"
            )
        self.fleet.shard_map.commit_migration(self.child)
        self.fleet.splits += 1
        self.finalized = True
        server = self.fleet.owner_of_shard(self.child)
        transport = server.context.transport
        transport.event_log.record(
            transport.scheduler.clock.now,
            "fleet.shard-split",
            self.fleet.shard_map.owner_of(self.parent),
            server.name,
            parent=self.parent,
            child=self.child,
            moved=len(self.moved),
            epoch=self.fleet.shard_map.epoch,
        )
        transport.metrics.counter("fleet.elastic.splits").increment()


def _creation_request(host: str):
    """The Figure 4.1 step-1 message ("request to be Buyer Agent Server")."""
    from repro.agents.messages import Message

    return Message(kind=MessageKinds.CREATE_BUYER_SERVER, payload={"host": host}, sender=host)
