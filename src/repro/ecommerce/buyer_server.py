"""The Buyer Agent Server — the consumer recommendation mechanism itself.

"Buyer Agent Server is also the proposed consumer recommendation mechanism.
... A consumer recommendation mechanism stands for servicing a consumer
community and providing the executable system and providing the storage of
saving consumer personal information." (§3.2)

:class:`BuyerAgentServer` is the host-side wrapper: it runs the Figure 4.1
bootstrap against the coordinator (which dispatches the BSMA here), attaches
the shared services (UserDB, BSMDB, the profile learner and the
recommendation service) and exposes the handles the consumer-facing
:class:`~repro.ecommerce.session.ConsumerSession` needs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import ECommerceError, RegistrationError
from repro.agents.context import AgletContext
from repro.agents.messages import MessageKinds
from repro.core.cold_start import ColdStartPolicy, ColdStartStrategy
from repro.core.cross_sell import CrossSellRecommender
from repro.core.hybrid import AgentHybridRecommender
from repro.core.information_filtering import InformationFilteringRecommender
from repro.core.items import Item, ItemCatalogView
from repro.core.neighbors import ProfileNeighborIndex
from repro.core.popularity import PopularityRecommender, WeeklyHottestRecommender
from repro.core.profile import Profile
from repro.core.profile_learning import LearningConfig, ProfileLearner
from repro.core.recommender import Recommendation, RecommendationEngine
from repro.core.similarity import SimilarityConfig
from repro.ecommerce.buyer_agents import BuyerServerManagementAgent, HttpAgent
from repro.ecommerce.databases import BSMDB, UserDB

__all__ = ["RecommendationService", "BuyerAgentServer"]


class RecommendationService:
    """Recommendation engines wired to the buyer agent server's databases.

    The BRA fetches this service from its host whenever it needs to generate
    recommendation information (§3.3-2), so the engines always see the latest
    profiles and observational ratings in UserDB.
    """

    def __init__(
        self,
        user_db: UserDB,
        catalog: ItemCatalogView,
        similarity_config: Optional[SimilarityConfig] = None,
        now: Optional[callable] = None,
        profile_learner: Optional[ProfileLearner] = None,
    ) -> None:
        self.user_db = user_db
        self.catalog = catalog
        self.similarity_config = similarity_config or SimilarityConfig()
        self.now = now if now is not None else (lambda: 0.0)

        def profile_of(user_id: str) -> Optional[Profile]:
            if not user_db.is_registered(user_id):
                return None
            return user_db.profile(user_id)

        # Neighbor search runs against the precomputed index, kept in sync
        # with UserDB by provider reconciliation and, when the learner is
        # known, by precise per-consumer invalidation hooks.
        self.neighbor_index = ProfileNeighborIndex(
            provider=user_db.profiles,
            config=self.similarity_config,
            provider_version=user_db.profiles_version,
        )
        if profile_learner is not None:
            self.neighbor_index.attach_to(profile_learner)

        self.hybrid = AgentHybridRecommender(
            ratings=user_db.ratings,
            catalog=catalog,
            profile_of=profile_of,
            all_profiles=user_db.profiles,
            similarity_config=self.similarity_config,
            neighbor_index=self.neighbor_index,
        )
        self.information_filtering = InformationFilteringRecommender(catalog, profile_of)
        self.popularity = PopularityRecommender(user_db.ratings, catalog)
        # §5.2 future-work extensions: weekly hottest and tied-sale suggestions.
        self.weekly_hottest = WeeklyHottestRecommender(
            user_db.ratings, now=self.now, catalog=catalog
        )
        self.cross_sell = CrossSellRecommender(user_db.ratings, catalog)
        self.cold_start = ColdStartPolicy(
            strategy=ColdStartStrategy.CONTENT_THEN_POPULARITY,
            content_recommender=self.information_filtering,
            popularity_recommender=self.popularity,
        )
        self.engine = RecommendationEngine(
            primary=self.hybrid,
            ratings=user_db.ratings,
            fallback=self.popularity,
        )
        self._batch_cache: Dict[str, List[Recommendation]] = {}
        self.last_batch_refresh_at: Optional[float] = None

    def recommend(
        self, user_id: str, k: int = 10, category: Optional[str] = None
    ) -> List[Recommendation]:
        """Recommendations for ``user_id`` (hybrid with popularity fallback)."""
        return self.engine.recommend(user_id, k=k, category=category)

    def recommend_many(
        self, user_ids: Iterable[str], k: int = 10, category: Optional[str] = None
    ) -> Dict[str, List[Recommendation]]:
        """Batch recommendations — identical output to per-user ``recommend``."""
        return self.engine.recommend_many(user_ids, k=k, category=category)

    def batch_refresh(
        self, user_ids: Iterable[str], k: int = 10
    ) -> Dict[str, List[Recommendation]]:
        """Recompute and cache recommendation lists for a set of consumers.

        The cache feeds :meth:`cached_recommendations` (e.g. instant lists on
        login); on-demand :meth:`recommend` calls always compute fresh.
        """
        results = self.recommend_many(user_ids, k=k)
        # Cache copies: callers may reorder/extend the returned lists freely
        # without corrupting what cached_recommendations serves later.
        self._batch_cache.update(
            {user_id: list(recs) for user_id, recs in results.items()}
        )
        self.last_batch_refresh_at = self.now()
        return results

    def cached_recommendations(self, user_id: str) -> Optional[List[Recommendation]]:
        """The last batch-refreshed list for ``user_id`` (None when absent)."""
        cached = self._batch_cache.get(user_id)
        return list(cached) if cached is not None else None

    def weekly_hottest_list(
        self, k: int = 10, category: Optional[str] = None
    ) -> List[Recommendation]:
        """The weekly hottest merchandise (§5.2 future-work item 2)."""
        return self.weekly_hottest.recommend("*community*", k=k, category=category)

    def cross_sell_for(
        self,
        user_id: str,
        k: int = 5,
        category: Optional[str] = None,
        basket: Optional[List[str]] = None,
    ) -> List[Recommendation]:
        """Tied-sale suggestions for an explicit basket or the purchase history."""
        if basket:
            return self.cross_sell.recommend_for_basket(
                list(basket), k=k, category=category
            )
        return self.cross_sell.recommend(user_id, k=k, category=category)

    def recommend_for_query(
        self, user_id: str, query_items: List[Item], k: int = 10, extra: int = 5
    ) -> List[Recommendation]:
        """Rank live query results and append similar-consumer discoveries."""
        known_items = [item for item in query_items if item.item_id in self.catalog]
        unknown_items = [item for item in query_items if item.item_id not in self.catalog]
        for item in unknown_items:
            # Merchandise discovered at a marketplace but not yet in the local
            # view becomes part of the recommendation catalogue from now on.
            self.catalog.add(item)
            known_items.append(item)
        return self.hybrid.recommend_for_query(user_id, known_items, k=k, extra=extra)


class BuyerAgentServer:
    """One buyer agent server (consumer recommendation mechanism)."""

    def __init__(
        self,
        context: AgletContext,
        coordinator_agent_id: str,
        catalog: Optional[ItemCatalogView] = None,
        learning_config: Optional[LearningConfig] = None,
        similarity_config: Optional[SimilarityConfig] = None,
    ) -> None:
        self.context = context
        self.name = context.host_name
        self.coordinator_agent_id = coordinator_agent_id

        # Attach the shared services the functional agents will look up.
        self.user_db = UserDB()
        self.bsmdb = BSMDB()
        self.profile_learner = ProfileLearner(learning_config)
        context.host.attach_service("user-db", self.user_db)
        context.host.attach_service("bsmdb", self.bsmdb)
        context.host.attach_service("profile-learner", self.profile_learner)
        context.host.attach_service("buyer-agent-server", self)

        self.recommendations = RecommendationService(
            self.user_db, catalog if catalog is not None else ItemCatalogView([]),
            similarity_config, now=lambda: context.now,
            profile_learner=self.profile_learner,
        )
        context.host.attach_service("recommendation-service", self.recommendations)

        self.bsma: Optional[BuyerServerManagementAgent] = None
        self.httpa: Optional[HttpAgent] = None
        self.batch_refreshes = 0

    # -- Figure 4.1 bootstrap -------------------------------------------------------

    def bootstrap(self) -> None:
        """Ask the coordinator to set this host up as a buyer agent server.

        Runs the full Figure 4.1 protocol: the request travels to the CA, the
        CA creates and dispatches a BSMA here, and the BSMA creates the PA and
        HttpA and initialises the databases on arrival.
        """
        if self.bsma is not None:
            raise RegistrationError(f"buyer agent server {self.name!r} is already bootstrapped")
        reply = self.context.send_message(
            self.coordinator_agent_id,
            _creation_request(self.name),
        )
        if not reply.ok:
            raise RegistrationError(f"coordinator refused to create buyer server: {reply.error}")
        bsma_id = reply.require("bsma_id")
        self.bsma = self.context.get_local(bsma_id)
        self.httpa = self.context.get_local(self.bsma.httpa_id)

    @property
    def is_ready(self) -> bool:
        return self.bsma is not None and self.bsma.initialized

    # -- direct handles used by sessions, tests and benchmarks -------------------------

    def http_proxy(self):
        if self.httpa is None:
            raise ECommerceError(f"buyer agent server {self.name!r} has not been bootstrapped")
        return self.httpa.proxy

    def online_users(self) -> List[str]:
        return self.bsmdb.online_user_ids()

    def register_consumer(self, user_id: str, display_name: str = "") -> None:
        """Register a consumer through the normal HttpA path."""
        reply = self.http_proxy().request(
            MessageKinds.REGISTER, sender="browser",
            user_id=user_id, display_name=display_name,
        )
        if not reply.ok:
            raise ECommerceError(reply.error)

    # -- periodic batch refresh ----------------------------------------------------

    def refresh_recommendations(self, k: int = 10) -> Dict[str, List[Recommendation]]:
        """Batch-recompute recommendation lists for the current community.

        Refreshes every online consumer (falling back to every registered
        consumer while nobody is logged in) through the shared
        :meth:`RecommendationService.batch_refresh`, so the next login can be
        served a precomputed list instantly.
        """
        users = self.bsmdb.online_user_ids() or self.user_db.user_ids
        results = self.recommendations.batch_refresh(users, k=k)
        self.batch_refreshes += 1
        return results

    def maybe_refresh_recommendations(
        self, interval_ms: float, k: int = 10
    ) -> bool:
        """Run :meth:`refresh_recommendations` when the interval has elapsed.

        This is the periodic driver: scenario loops (and any external ticker)
        call it once per step and the refresh fires at most every
        ``interval_ms`` of simulated time.  Returns True when a refresh ran.
        """
        if interval_ms < 0:
            raise ECommerceError("refresh interval cannot be negative")
        last = self.recommendations.last_batch_refresh_at
        if last is not None and self.context.now - last < interval_ms:
            return False
        self.refresh_recommendations(k=k)
        return True


def _creation_request(host: str):
    """The Figure 4.1 step-1 message ("request to be Buyer Agent Server")."""
    from repro.agents.messages import Message

    return Message(kind=MessageKinds.CREATE_BUYER_SERVER, payload={"host": host}, sender=host)
