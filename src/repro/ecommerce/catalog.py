"""Merchandise catalogue with stock and price management.

Seller servers "integrate and catalogue merchandise" (§3.2); marketplaces hold
the listings seller agents bring them.  A :class:`MerchandiseCatalog` is the
mutable, stock-aware store both use; recommenders see it through the read-only
:class:`~repro.core.items.ItemCatalogView`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.errors import CatalogError, TransactionError
from repro.core.items import Item, ItemCatalogView

__all__ = ["Listing", "MerchandiseCatalog"]


@dataclass
class Listing:
    """One catalogue entry: an item plus commercial terms."""

    item: Item
    stock: int = 0
    reserve_price: float = 0.0
    sold: int = 0

    def __post_init__(self) -> None:
        if self.stock < 0:
            raise CatalogError(f"listing {self.item.item_id!r} has negative stock")
        if self.reserve_price < 0:
            raise CatalogError(f"listing {self.item.item_id!r} has a negative reserve price")
        if self.reserve_price == 0.0:
            # Default reservation: sellers will not go below 70% of list price.
            self.reserve_price = round(self.item.price * 0.7, 2)

    @property
    def available(self) -> bool:
        return self.stock > 0


class MerchandiseCatalog:
    """Stock-aware catalogue of merchandise listings."""

    def __init__(self, owner: str = "") -> None:
        self.owner = owner
        self._listings: Dict[str, Listing] = {}

    # -- listing management --------------------------------------------------------

    def list_item(self, item: Item, stock: int = 1, reserve_price: float = 0.0) -> Listing:
        """Add an item to the catalogue (or add stock to an existing listing)."""
        if item.item_id in self._listings:
            listing = self._listings[item.item_id]
            listing.stock += stock
            return listing
        listing = Listing(item=item, stock=stock, reserve_price=reserve_price)
        self._listings[item.item_id] = listing
        return listing

    def remove_item(self, item_id: str) -> None:
        if item_id not in self._listings:
            raise CatalogError(f"cannot remove unknown item {item_id!r}")
        del self._listings[item_id]

    def listing(self, item_id: str) -> Listing:
        if item_id not in self._listings:
            raise CatalogError(f"unknown item {item_id!r} in catalogue of {self.owner!r}")
        return self._listings[item_id]

    def item(self, item_id: str) -> Item:
        return self.listing(item_id).item

    def __contains__(self, item_id: str) -> bool:
        return item_id in self._listings

    def __len__(self) -> int:
        return len(self._listings)

    def listings(self) -> List[Listing]:
        return [self._listings[item_id] for item_id in sorted(self._listings)]

    def items(self) -> List[Item]:
        return [listing.item for listing in self.listings()]

    def view(self) -> ItemCatalogView:
        """A read-only view for the recommenders."""
        return ItemCatalogView(self.items())

    # -- search ----------------------------------------------------------------------

    def search(self, keyword: str, in_stock_only: bool = True) -> List[Listing]:
        """Keyword search over listings (name, category or descriptive term)."""
        matches = [
            listing
            for listing in self.listings()
            if listing.item.matches_keyword(keyword)
            and (listing.available or not in_stock_only)
        ]
        return matches

    def in_category(self, category: str, in_stock_only: bool = True) -> List[Listing]:
        return [
            listing
            for listing in self.listings()
            if listing.item.category == category
            and (listing.available or not in_stock_only)
        ]

    # -- stock / sales ------------------------------------------------------------------

    def sell(self, item_id: str, quantity: int = 1) -> Item:
        """Decrement stock for a completed sale and return the item sold."""
        if quantity <= 0:
            raise TransactionError("quantity must be positive")
        listing = self.listing(item_id)
        if listing.stock < quantity:
            raise TransactionError(
                f"item {item_id!r} has only {listing.stock} in stock, wanted {quantity}"
            )
        listing.stock -= quantity
        listing.sold += quantity
        return listing.item

    def restock(self, item_id: str, quantity: int) -> None:
        if quantity <= 0:
            raise CatalogError("restock quantity must be positive")
        self.listing(item_id).stock += quantity

    def total_stock(self) -> int:
        return sum(listing.stock for listing in self._listings.values())

    def total_sold(self) -> int:
        return sum(listing.sold for listing in self._listings.values())
