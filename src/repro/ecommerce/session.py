"""Consumer-facing session API.

"Consumers can connect to the consumer recommend mechanism through browser
with PC or Notebook." (§3.2)  A :class:`ConsumerSession` plays the role of
that browser: it talks exclusively to the HttpA agent of one buyer agent
server and exposes the operations the paper's workflows cover — merchandise
query, direct purchase, auction, negotiation, recommendations — as plain
Python methods returning plain result objects.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import SessionError
from repro.agents.messages import MessageKinds
from repro.core.items import Item
from repro.core.recommender import Recommendation
from repro.ecommerce.transactions import TransactionRecord

__all__ = ["QueryResult", "TradeResult", "ConsumerSession"]


def _warn_legacy(method: str) -> None:
    """Deprecation shim notice: client traffic belongs on the gateway.

    The session's workflow methods remain fully functional (the tier-1
    suite still exercises them), but new callers should issue operations
    through :class:`repro.api.PlatformGateway`, which wraps the same code
    paths in the versioned envelope / middleware chain.
    """
    warnings.warn(
        f"ConsumerSession.{method}() is a legacy entry point; issue client "
        f"operations through PlatformGateway.{method}() "
        "(build_platform(...).gateway()) instead",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class QueryResult:
    """One merchandise search hit returned to the consumer."""

    item: Item
    price: float
    marketplace: str
    stock: int

    @property
    def item_id(self) -> str:
        return self.item.item_id


@dataclass(frozen=True)
class TradeResult:
    """Outcome of a buy / auction / negotiation request."""

    succeeded: bool
    transaction: Optional[TransactionRecord]
    outcome: Dict[str, Any]
    recommendations: List[Recommendation] = field(default_factory=list)

    @property
    def price_paid(self) -> Optional[float]:
        return self.transaction.price if self.transaction else None


class ConsumerSession:
    """A logged-in consumer's handle onto the recommendation mechanism."""

    def __init__(self, buyer_server: "BuyerAgentServer", user_id: str) -> None:
        self._server = buyer_server
        self.user_id = user_id
        self._active = False
        self.last_query_results: List[QueryResult] = []
        self.last_recommendations: List[Recommendation] = []

    # -- lifecycle -----------------------------------------------------------------

    def login(self) -> "ConsumerSession":
        """Log in: the mechanism creates this consumer's BRA (§4.1-1)."""
        if self._active:
            raise SessionError(f"session for {self.user_id!r} is already active")
        reply = self._request(MessageKinds.LOGIN)
        self.bra_id = reply.require("bra_id")
        self._active = True
        return self

    def logout(self) -> None:
        """Log out: the mechanism disposes of this consumer's BRA (§4.1-1)."""
        self._require_active()
        self._request(MessageKinds.LOGOUT)
        self._active = False

    @property
    def is_active(self) -> bool:
        return self._active

    @property
    def server(self) -> "BuyerAgentServer":
        """The buyer agent server this session is bound to.

        The gateway compares it against the fleet's current routing to
        detect sessions orphaned by a failover and re-home them.
        """
        return self._server

    def __enter__(self) -> "ConsumerSession":
        if not self._active:
            self.login()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._active:
            self.logout()

    # -- workflows -----------------------------------------------------------------

    def query(
        self,
        keyword: str,
        category: Optional[str] = None,
        marketplaces: Optional[List[str]] = None,
    ) -> List[QueryResult]:
        """Figure 4.2: query merchandise across the marketplaces.

        .. deprecated:: use :meth:`repro.api.PlatformGateway.query`.
        """
        _warn_legacy("query")
        return self._query(keyword, category=category, marketplaces=marketplaces)

    def _query(
        self,
        keyword: str,
        category: Optional[str] = None,
        marketplaces: Optional[List[str]] = None,
    ) -> List[QueryResult]:
        """Gateway-internal query implementation (no deprecation notice).

        The returned list is what the MBA found; the accompanying
        recommendation information is available via
        :attr:`last_recommendations`.
        """
        self._require_active()
        payload: Dict[str, Any] = {"keyword": keyword}
        if category is not None:
            payload["category"] = category
        if marketplaces is not None:
            payload["marketplaces"] = marketplaces
        reply = self._request(MessageKinds.QUERY, **payload)
        self.last_query_results = [
            QueryResult(
                item=entry["item"],
                price=float(entry.get("price", entry["item"].price)),
                marketplace=entry.get("marketplace", ""),
                stock=int(entry.get("stock", 0)),
            )
            for entry in reply.value("results", [])
        ]
        self.last_recommendations = list(reply.value("recommendations", []))
        return self.last_query_results

    def buy(self, item: Item, marketplace: Optional[str] = None) -> TradeResult:
        """Figure 4.3: buy an item at list price.

        .. deprecated:: use :meth:`repro.api.PlatformGateway.buy`.
        """
        _warn_legacy("buy")
        return self._buy(item, marketplace=marketplace)

    def _buy(self, item: Item, marketplace: Optional[str] = None) -> TradeResult:
        return self._trade(MessageKinds.BUY, item, marketplace=marketplace)

    def join_auction(
        self, item: Item, max_price: float, marketplace: Optional[str] = None
    ) -> TradeResult:
        """Figure 4.3: join the auction for an item, bidding up to ``max_price``.

        .. deprecated:: use :meth:`repro.api.PlatformGateway.join_auction`.
        """
        _warn_legacy("join_auction")
        return self._join_auction(item, max_price, marketplace=marketplace)

    def _join_auction(
        self, item: Item, max_price: float, marketplace: Optional[str] = None
    ) -> TradeResult:
        return self._trade(
            MessageKinds.AUCTION_JOIN, item, marketplace=marketplace, max_price=max_price
        )

    def negotiate(
        self, item: Item, max_price: float, marketplace: Optional[str] = None
    ) -> TradeResult:
        """Figure 4.3 variant: bargain for the item up to ``max_price``.

        .. deprecated:: use :meth:`repro.api.PlatformGateway.negotiate`.
        """
        _warn_legacy("negotiate")
        return self._negotiate(item, max_price, marketplace=marketplace)

    def _negotiate(
        self, item: Item, max_price: float, marketplace: Optional[str] = None
    ) -> TradeResult:
        return self._trade(
            MessageKinds.NEGOTIATE, item, marketplace=marketplace, max_price=max_price
        )

    def recommendations(
        self, k: int = 10, category: Optional[str] = None
    ) -> List[Recommendation]:
        """Stand-alone recommendation request (no marketplace round trip).

        .. deprecated:: use :meth:`repro.api.PlatformGateway.recommendations`.
        """
        _warn_legacy("recommendations")
        return self._recommendations(k=k, category=category)

    def _recommendations(
        self, k: int = 10, category: Optional[str] = None
    ) -> List[Recommendation]:
        self._require_active()
        reply = self._request(MessageKinds.RECOMMENDATIONS, k=k, category=category)
        self.last_recommendations = list(reply.value("recommendations", []))
        return self.last_recommendations

    def rate(self, item: Item, rating: float) -> float:
        """Explicitly rate merchandise on a 0-5 scale; updates the profile.

        .. deprecated:: use :meth:`repro.api.PlatformGateway.rate`.
        """
        _warn_legacy("rate")
        return self._rate(item, rating)

    def _rate(self, item: Item, rating: float) -> float:
        self._require_active()
        reply = self._request(MessageKinds.RATE, item=item, rating=rating)
        return float(reply.value("rating", rating))

    def weekly_hottest(
        self, k: int = 10, category: Optional[str] = None
    ) -> List[Recommendation]:
        """The community-wide weekly hottest merchandise (§5.2 extension).

        .. deprecated:: use :meth:`repro.api.PlatformGateway.weekly_hottest`.
        """
        _warn_legacy("weekly_hottest")
        return self._weekly_hottest(k=k, category=category)

    def _weekly_hottest(
        self, k: int = 10, category: Optional[str] = None
    ) -> List[Recommendation]:
        self._require_active()
        reply = self._request(MessageKinds.HOTTEST, k=k, category=category)
        return list(reply.value("recommendations", []))

    def cross_sell(
        self,
        k: int = 5,
        category: Optional[str] = None,
        basket: Optional[List[str]] = None,
    ) -> List[Recommendation]:
        """Tied-sale suggestions for a basket of item ids or past purchases.

        .. deprecated:: use :meth:`repro.api.PlatformGateway.cross_sell`.
        """
        _warn_legacy("cross_sell")
        return self._cross_sell(k=k, category=category, basket=basket)

    def _cross_sell(
        self,
        k: int = 5,
        category: Optional[str] = None,
        basket: Optional[List[str]] = None,
    ) -> List[Recommendation]:
        self._require_active()
        payload: Dict[str, Any] = {"k": k}
        if category is not None:
            payload["category"] = category
        if basket is not None:
            payload["basket"] = list(basket)
        reply = self._request(MessageKinds.CROSS_SELL, **payload)
        return list(reply.value("recommendations", []))

    # -- internals --------------------------------------------------------------------

    def _trade(
        self,
        kind: str,
        item: Item,
        marketplace: Optional[str] = None,
        max_price: Optional[float] = None,
    ) -> TradeResult:
        self._require_active()
        payload: Dict[str, Any] = {"item": item}
        if marketplace is not None:
            payload["marketplace"] = marketplace
        if max_price is not None:
            payload["max_price"] = max_price
        reply = self._request(kind, **payload)
        result = TradeResult(
            succeeded=bool(reply.value("succeeded", False)),
            transaction=reply.value("transaction"),
            outcome=dict(reply.value("outcome", {})),
            recommendations=list(reply.value("recommendations", [])),
        )
        self.last_recommendations = result.recommendations
        return result

    def _request(self, kind: str, **payload: Any):
        reply = self._server.http_proxy().request(
            kind, sender=f"browser:{self.user_id}", user_id=self.user_id, **payload
        )
        if not reply.ok:
            raise SessionError(reply.error)
        return reply

    def _require_active(self) -> None:
        if not self._active:
            raise SessionError(
                f"session for {self.user_id!r} is not active; call login() first"
            )
