"""Assemble the full e-commerce platform on the simulated substrate.

:func:`build_platform` wires together everything Figure 3.1 shows — a
coordinator server, marketplaces, seller servers and a buyer agent server —
on top of the simulated network and the Aglet-style runtime, stocks the
marketplaces with synthetic merchandise and runs the Figure 4.1 bootstrap.
The resulting :class:`ECommercePlatform` is the facade used by the examples,
the integration tests and every platform-level benchmark.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ECommerceError, UnknownUserError
from repro.agents.context import AgletContext
from repro.agents.security import AuthenticationService
from repro.agents.directory import ContextDirectory
from repro.core.items import Item, ItemCatalogView
from repro.core.profile_learning import LearningConfig
from repro.core.scoring import resolve_backend
from repro.core.similarity import SimilarityConfig
from repro.platform.clock import Scheduler
from repro.platform.events import EventLog
from repro.platform.failure import FailureInjector
from repro.platform.host import Host
from repro.platform.metrics import MetricsRegistry
from repro.platform.network import NetworkConfig, SimulatedNetwork
from repro.platform.transport import Transport
from repro.core.sharding import ROUTING_STRATEGIES
from repro.ecommerce.buyer_server import BuyerAgentServer, BuyerServerFleet
from repro.ecommerce.coordinator import CoordinatorServer
from repro.ecommerce.marketplace import MarketplaceServer
from repro.ecommerce.seller import SellerServer
from repro.ecommerce.session import ConsumerSession

__all__ = ["PlatformConfig", "ECommercePlatform", "build_platform"]


@dataclass
class PlatformConfig:
    """Shape of the platform to build.

    Attributes:
        num_marketplaces: how many marketplace servers to create.
        num_sellers: how many seller servers to create.
        items_per_seller: synthetic merchandise generated per seller.
        stock_per_item: initial stock of every listing.
        replicate_listings: when True every seller lists on every marketplace;
            when False sellers are spread round-robin so different
            marketplaces carry different merchandise (which is what makes
            multi-marketplace itineraries worthwhile, capability CAP-2).
        seed: master seed for the synthetic catalogue and the network model.
        network: network latency/loss parameters.
        learning: profile-learning parameters of the mechanism.
        similarity: similarity-algorithm parameters of the mechanism.
        num_buyer_servers: how many buyer agent servers to run.  With more
            than one the platform runs in multi-server (fleet) mode: each
            server owns a shard of the consumer community, consumers are
            routed at registration and similar-user queries fan out/merge
            (see :class:`~repro.ecommerce.buyer_server.BuyerServerFleet`).
        neighbor_shards: partitions of each server's own neighbor index
            (1 = the monolithic PR-1 index).
        shard_routing: routing strategy for the in-server neighbor-index
            shards ("hash" or "category").  Fleet-level placement is always
            the stable consumer hash — consumers are routed at registration,
            before their profile has any categories to route by.
        replication_factor: how many replica peers each buyer agent server
            streams its UserDB mutations to (0 = no replication, the
            single-copy PR-2 behaviour).  With ``f >= 1`` server *i*
            replicates to servers ``i+1 .. i+f`` (mod N), the coordinator
            records the replica map, and
            :meth:`~repro.ecommerce.buyer_server.BuyerServerFleet.handle_server_failure`
            drains crashed servers from replicas instead of their memory.
            Requires ``num_buyer_servers > replication_factor``.
        replication_anti_entropy_interval_ms: cadence of each server's
            scheduled anti-entropy catch-up task (re-ships whatever lagging
            replicas missed while down or partitioned).
        replication_wal_truncate_threshold: bound on each server's
            write-ahead log: once every replica peer has acknowledged this
            many entries beyond the last truncation point, the server
            snapshots its state and truncates the acknowledged prefix
            (0 disables truncation — the unbounded PR-3 behaviour).
            Truncation never drops an entry any peer has not acknowledged,
            so a lagging peer holds the bound open rather than losing data.
        api_deadline_ms: default simulated-time budget for every gateway
            request (``None`` = unbounded).  Individual requests override it
            via their ``deadline_ms`` field; a request whose work overruns
            the budget returns an ``unavailable`` envelope with code
            ``deadline-exceeded`` instead of its result.
        api_max_retries: how many times the gateway retries a *retryable*
            failure (network, dead host, fleet routing) before returning the
            final ``unavailable`` envelope.  Between attempts the retry
            middleware re-routes around crashed primaries via the promotion
            failover when a live replica exists.
        api_retry_backoff_ms: initial retry backoff, charged to the
            simulated clock and doubled per attempt.
        api_admission_capacity: token-bucket burst capacity for gateway
            admission control (0 disables load shedding — the default, which
            keeps gateway traffic byte-identical to direct calls).
        api_admission_refill_per_ms: tokens restored per simulated
            millisecond once admission control is enabled.
        api_admission_classes: optional per-operation admission classes —
            a mapping ``{class_name: {"operations": [...],
            "capacity": float, "refill_per_ms": float, "cost": float}}``
            giving each named group of operations its own weighted token
            bucket (``cost`` defaults to 1.0).  Classed operations never
            touch the default bucket, so a burst of cheap reads sheds in
            its own class while writes keep their tokens; unclassed
            operations still use ``api_admission_capacity``.  ``None``
            (the default) disables classes entirely, keeping admission
            byte-identical to the single-bucket behaviour.
        fleet_hedge_delay_percentile: optional tail-latency hedging for
            fleet ``find_similar`` fan-outs.  When set to ``p`` in
            ``(0, 1]``, a shard whose round trip exceeds the ``p``-th
            percentile of this fan-out's shard latencies gets a *hedge*:
            the freshest replica holder is asked for the same answer after
            that percentile delay, and the shard is charged
            ``min(primary, delay + hedge)`` — the Dean & Barroso
            tail-at-scale trick.  ``None`` (the default) never hedges and
            is byte-identical to the unhedged fan-out; ``1.0`` arms the
            machinery but can never fire (no latency exceeds the max).
        scoring_backend: which :mod:`repro.core.scoring` kernel backend the
            neighbor indexes use — ``"dict"`` (the PR-1 reference loops),
            ``"array"`` (stdlib contiguous arrays, the default), ``"numpy"``
            (vectorized blocks; requires numpy) or ``"auto"`` (numpy when
            importable, else ``"array"``).  All backends are score-identical
            by construction — the differential suite in
            ``tests/property/test_scoring_kernel.py`` pins it — so this
            knob trades speed, never answers.
        api_recommendation_cache: serve gateway ``recommendations``
            requests from batch-refresh output when an exactly-matching
            entry exists (``served_from_cache`` provenance), with write
            hooks invalidating per consumer.  Off by default — the default
            request path and hook graph stay byte-identical.
        handshake_trades: secure every marketplace trade with the
            :mod:`repro.adversarial` handshake protocol (nonce challenge +
            HMAC echo + single finalize); finalized trades record a
            verifiable transcript and the gateway grows a ``handshake``
            probe operation.  Off by default — the trade path, reply
            payloads and metric stream are byte-identical to the
            unsecured platform.
    """

    num_marketplaces: int = 2
    num_sellers: int = 2
    items_per_seller: int = 30
    stock_per_item: int = 25
    replicate_listings: bool = False
    seed: int = 0
    network: NetworkConfig = field(default_factory=NetworkConfig)
    learning: LearningConfig = field(default_factory=LearningConfig)
    similarity: SimilarityConfig = field(default_factory=SimilarityConfig)
    num_buyer_servers: int = 1
    neighbor_shards: int = 1
    shard_routing: str = "hash"
    replication_factor: int = 0
    replication_anti_entropy_interval_ms: float = 200.0
    replication_wal_truncate_threshold: int = 64
    api_deadline_ms: Optional[float] = None
    api_max_retries: int = 2
    api_retry_backoff_ms: float = 25.0
    api_admission_capacity: int = 0
    api_admission_refill_per_ms: float = 1.0
    api_admission_classes: Optional[Dict[str, Dict[str, object]]] = None
    fleet_hedge_delay_percentile: Optional[float] = None
    scoring_backend: str = "array"
    api_recommendation_cache: bool = False
    handshake_trades: bool = False

    def validate(self) -> None:
        if self.num_marketplaces <= 0:
            raise ECommerceError("the platform needs at least one marketplace")
        if self.num_sellers <= 0:
            raise ECommerceError("the platform needs at least one seller server")
        if self.items_per_seller <= 0:
            raise ECommerceError("items_per_seller must be positive")
        if self.stock_per_item <= 0:
            raise ECommerceError("stock_per_item must be positive")
        if self.num_buyer_servers <= 0:
            raise ECommerceError("the platform needs at least one buyer agent server")
        if self.neighbor_shards <= 0:
            raise ECommerceError("neighbor_shards must be positive")
        if self.shard_routing not in ROUTING_STRATEGIES:
            raise ECommerceError(
                f"unknown shard routing {self.shard_routing!r}; "
                f"expected one of {ROUTING_STRATEGIES}"
            )
        if self.replication_factor < 0:
            raise ECommerceError("replication_factor cannot be negative")
        if self.replication_factor >= max(self.num_buyer_servers, 1) and self.replication_factor > 0:
            raise ECommerceError(
                f"replication_factor={self.replication_factor} needs at least "
                f"{self.replication_factor + 1} buyer servers "
                f"(got {self.num_buyer_servers})"
            )
        if self.replication_anti_entropy_interval_ms <= 0:
            raise ECommerceError("replication anti-entropy interval must be positive")
        if self.replication_wal_truncate_threshold < 0:
            raise ECommerceError(
                "replication WAL truncate threshold cannot be negative "
                "(use 0 to disable truncation)"
            )
        if self.api_deadline_ms is not None and self.api_deadline_ms <= 0:
            raise ECommerceError(
                "api_deadline_ms must be positive (use None for no deadline)"
            )
        if self.api_max_retries < 0:
            raise ECommerceError("api_max_retries cannot be negative")
        if self.api_retry_backoff_ms <= 0:
            raise ECommerceError("api_retry_backoff_ms must be positive")
        if self.api_admission_capacity < 0:
            raise ECommerceError(
                "api_admission_capacity cannot be negative "
                "(use 0 to disable admission control)"
            )
        if self.api_admission_refill_per_ms <= 0:
            raise ECommerceError("api_admission_refill_per_ms must be positive")
        if self.api_admission_classes is not None:
            classed_operations: Dict[str, str] = {}
            for class_name, spec in self.api_admission_classes.items():
                if not isinstance(spec, dict):
                    raise ECommerceError(
                        f"admission class {class_name!r} must be a dict "
                        f"with operations/capacity/refill_per_ms"
                    )
                operations = spec.get("operations")
                if not operations:
                    raise ECommerceError(
                        f"admission class {class_name!r} names no operations"
                    )
                for operation in operations:
                    if not isinstance(operation, str):
                        raise ECommerceError(
                            f"admission class {class_name!r} has a "
                            f"non-string operation: {operation!r}"
                        )
                    previous = classed_operations.setdefault(operation, class_name)
                    if previous != class_name:
                        raise ECommerceError(
                            f"operation {operation!r} is claimed by both "
                            f"admission classes {previous!r} and "
                            f"{class_name!r}"
                        )
                if float(spec.get("capacity", 0)) <= 0:
                    raise ECommerceError(
                        f"admission class {class_name!r} needs a positive "
                        f"capacity"
                    )
                if float(spec.get("refill_per_ms", 0)) <= 0:
                    raise ECommerceError(
                        f"admission class {class_name!r} needs a positive "
                        f"refill_per_ms"
                    )
                if float(spec.get("cost", 1.0)) <= 0:
                    raise ECommerceError(
                        f"admission class {class_name!r} needs a positive "
                        f"cost"
                    )
        if self.fleet_hedge_delay_percentile is not None and not (
            0.0 < self.fleet_hedge_delay_percentile <= 1.0
        ):
            raise ECommerceError(
                "fleet_hedge_delay_percentile must be in (0, 1] "
                "(use None to disable hedging)"
            )
        try:
            resolve_backend(self.scoring_backend)
        except Exception as exc:
            raise ECommerceError(f"invalid scoring_backend: {exc}") from exc


class ECommercePlatform:
    """The assembled platform: servers, substrate handles and consumer entry points."""

    def __init__(self, config: PlatformConfig) -> None:
        config.validate()
        self.config = config

        # -- simulation substrate ------------------------------------------------
        self.scheduler = Scheduler()
        network_config = NetworkConfig(
            base_latency_ms=config.network.base_latency_ms,
            local_latency_ms=config.network.local_latency_ms,
            bandwidth_kb_per_ms=config.network.bandwidth_kb_per_ms,
            jitter_ms=config.network.jitter_ms,
            loss_probability=config.network.loss_probability,
            seed=config.seed,
        )
        self.network = SimulatedNetwork(network_config)
        self.event_log = EventLog()
        self.metrics = MetricsRegistry()
        self.transport = Transport(self.network, self.scheduler, self.event_log, self.metrics)
        self.directory = ContextDirectory()
        self.failures = FailureInjector(self.network, self.scheduler)
        self.hosts: Dict[str, Host] = {}

        # -- servers ---------------------------------------------------------------
        self.coordinator = self._build_coordinator()
        self.marketplaces: List[MarketplaceServer] = [
            self._build_marketplace(index) for index in range(config.num_marketplaces)
        ]
        self.sellers: List[SellerServer] = [
            self._build_seller(index) for index in range(config.num_sellers)
        ]
        self._stock_sellers_and_marketplaces()
        self.buyer_servers: List[BuyerAgentServer] = [
            self._build_buyer_server(index) for index in range(config.num_buyer_servers)
        ]
        self.buyer_server = self.buyer_servers[0]
        # Multi-server mode: the fleet routes consumers and fans out queries.
        # The coordinator handle lets promotion failovers update the CA's
        # shard map in place.
        self.fleet: Optional[BuyerServerFleet] = (
            BuyerServerFleet(
                self.buyer_servers,
                coordinator=self.coordinator,
                hedge_delay_percentile=config.fleet_hedge_delay_percentile,
                scoring_backend=config.scoring_backend,
            )
            if config.num_buyer_servers > 1
            else None
        )
        if config.replication_factor > 0:
            self._wire_replication()

        self._sessions: Dict[str, ConsumerSession] = {}
        self._gateway = None

    def _wire_replication(self) -> None:
        """Stream every buyer server's WAL to its ring successors.

        Server *i* replicates to servers ``i+1 .. i+replication_factor``
        (mod N): simple, deterministic, and guarantees that any single crash
        leaves at least ``replication_factor`` live replicas.  The CA records
        the replica map, and each server's anti-entropy catch-up task is
        armed on the shared scheduler.
        """
        servers = self.buyer_servers
        for server in servers:
            server.enable_replication(
                wal_truncate_threshold=self.config.replication_wal_truncate_threshold
            )
        for index, server in enumerate(servers):
            replica_names = []
            for offset in range(1, self.config.replication_factor + 1):
                peer = servers[(index + offset) % len(servers)]
                server.replication.replicate_to(peer)
                replica_names.append(peer.name)
            self.coordinator.register_replication(server.name, replica_names)
            server.replication.start_anti_entropy(
                self.config.replication_anti_entropy_interval_ms
            )

    # -- construction helpers -------------------------------------------------------

    def _new_host(self, name: str) -> Host:
        host = Host(name, self.network, self.scheduler)
        host.start()
        self.hosts[name] = host
        self.failures.register_host(host)
        return host

    def _new_context(self, host: Host) -> AgletContext:
        # Same-seed runs must produce identical credential/nonce streams,
        # so each context's AuthenticationService derives its signing
        # secret and token RNG from the platform seed and host name
        # instead of OS entropy.
        token = f"auth|{self.config.seed}|{host.name}"
        auth = AuthenticationService(
            host.name,
            secret=hashlib.sha256(token.encode("utf-8")).digest(),
            rng=random.Random(token),
        )
        return AgletContext(host, self.transport, self.directory, auth=auth)

    def _build_coordinator(self) -> CoordinatorServer:
        host = self._new_host("coordinator")
        return CoordinatorServer(self._new_context(host))

    def _build_marketplace(self, index: int) -> MarketplaceServer:
        name = f"marketplace-{index + 1}"
        host = self._new_host(name)
        server = MarketplaceServer(
            self._new_context(host),
            seed=self.config.seed + index,
            handshake_trades=self.config.handshake_trades,
        )
        self.coordinator.register_server("marketplace", name)
        return server

    def _build_seller(self, index: int) -> SellerServer:
        name = f"seller-{index + 1}"
        host = self._new_host(name)
        server = SellerServer(self._new_context(host))
        self.coordinator.register_server("seller", name)
        return server

    def _stock_sellers_and_marketplaces(self) -> None:
        """Generate synthetic merchandise and list it on the marketplaces."""
        from repro.workload.products import ProductGenerator

        generator = ProductGenerator(seed=self.config.seed)
        for index, seller in enumerate(self.sellers):
            items = generator.generate(
                count=self.config.items_per_seller, seller=seller.name
            )
            seller.add_all(items, stock=self.config.stock_per_item)
            if self.config.replicate_listings:
                targets = [marketplace.name for marketplace in self.marketplaces]
            else:
                marketplace = self.marketplaces[index % len(self.marketplaces)]
                targets = [marketplace.name]
            for target in targets:
                seller.list_on_marketplace(target)

    def _build_buyer_server(
        self, index: int, shard_id: object = "auto"
    ) -> BuyerAgentServer:
        name = "buyer-agent-server" if index == 0 else f"buyer-agent-server-{index + 1}"
        host = self._new_host(name)
        context = self._new_context(host)
        server = BuyerAgentServer(
            context,
            coordinator_agent_id=self.coordinator.agent.aglet_id,
            catalog=self.catalog_view(),
            learning_config=self.config.learning,
            similarity_config=self.config.similarity,
            neighbor_shards=self.config.neighbor_shards,
            shard_routing=self.config.shard_routing,
            scoring_backend=self.config.scoring_backend,
        )
        if shard_id == "auto":
            shard_id = index if self.config.num_buyer_servers > 1 else None
        self.coordinator.register_server("buyer-server", host.name, shard_id=shard_id)
        server.bootstrap()
        return server

    # -- elastic fleet operations ---------------------------------------------------------

    def add_buyer_server(self) -> BuyerAgentServer:
        """Scale out: join one more buyer agent server to the fleet.

        A previously removed server is resurrected first (host restarted,
        stale state purged through the recovery machinery, replication
        rewired); otherwise a brand-new server is built, bootstrapped
        against the coordinator and joined as shard-less capacity — it
        takes load only once the autoscaler (or a caller) hands it a shard
        via :meth:`~repro.ecommerce.buyer_server.BuyerServerFleet.transfer_shard`
        or :meth:`~repro.ecommerce.buyer_server.BuyerServerFleet.split_shard`.
        """
        if self.fleet is None:
            raise ECommerceError(
                "add_buyer_server needs fleet mode (num_buyer_servers > 1)"
            )
        for server in reversed(self.buyer_servers):
            if server.name in self.fleet.retired:
                host = self.hosts[server.name]
                if not host.is_running:
                    host.recover()
                self.fleet.add_server(server)
                self.fleet.recover_server(server)
                self._wire_server_replication(server)
                return server
        server = self._build_buyer_server(len(self.buyer_servers), shard_id=None)
        self.buyer_servers.append(server)
        self.fleet.add_server(server)
        self._wire_server_replication(server)
        return server

    def remove_buyer_server(self, server: BuyerAgentServer) -> None:
        """Scale in: retire ``server`` (it must own no shards) and stop its host.

        The fleet unwires its replication streams in both directions and
        marks it retired; the host then leaves the network cleanly.  The
        server object stays known so :meth:`add_buyer_server` can resurrect
        it on the next scale-out instead of growing the host population
        without bound.
        """
        if self.fleet is None:
            raise ECommerceError(
                "remove_buyer_server needs fleet mode (num_buyer_servers > 1)"
            )
        self.fleet.decommission_server(server)
        host = self.hosts[server.name]
        if host.is_running:
            host.stop()

    def _wire_server_replication(self, server: BuyerAgentServer) -> None:
        """Wire one newly joined server into the replication ring.

        Outbound: the server streams to its first ``replication_factor``
        live, non-retired ring successors (skipping streams that already
        exist).  Inbound: primaries whose ideal ring successor is the new
        server swap their ring-farthest peer for it — the same convergence
        a recovered host gets.  No-op when the platform does not replicate.
        """
        if self.config.replication_factor <= 0:
            return
        if server.replication is None:
            server.enable_replication(
                wal_truncate_threshold=self.config.replication_wal_truncate_threshold
            )
        servers = self.buyer_servers
        index = servers.index(server)
        total = len(servers)
        wired = 0
        for offset in range(1, total):
            if wired >= self.config.replication_factor:
                break
            peer = servers[(index + offset) % total]
            if peer is server or peer.name in self.fleet.retired:
                continue
            if not peer.context.host.is_running or peer.replication is None:
                continue
            if not any(existing is peer for existing in server.replication.peers):
                server.replication.replicate_to(peer)
            wired += 1
        self.coordinator.register_replication(
            server.name, [peer.name for peer in server.replication.peers]
        )
        if not server.replication.anti_entropy_scheduled:
            server.replication.start_anti_entropy(
                self.config.replication_anti_entropy_interval_ms
            )
        self.fleet._rewire_recovered_replication(server)

    # -- consumer entry points -----------------------------------------------------------

    def buyer_server_for(self, user_id: str) -> BuyerAgentServer:
        """The buyer agent server serving ``user_id`` (fleet-routed when sharded)."""
        if self.fleet is not None:
            return self.fleet.server_for(user_id)
        return self.buyer_server

    def register_consumer(self, user_id: str, display_name: str = "") -> None:
        """Register a consumer with the recommendation mechanism."""
        if self.fleet is not None:
            self.fleet.register_consumer(user_id, display_name)
        else:
            self.buyer_server.register_consumer(user_id, display_name)

    def login(self, user_id: str, register: bool = True) -> ConsumerSession:
        """Log a consumer in and return their session.

        With ``register=True`` (the default) unknown consumers are registered
        first, which is what the examples and most tests want.  In fleet mode
        the session talks to the server owning the consumer's shard.
        """
        server = self.buyer_server_for(user_id)
        if register and not server.user_db.is_registered(user_id):
            self.register_consumer(user_id)
        session = ConsumerSession(server, user_id)
        session.login()
        self._sessions[user_id] = session
        return session

    def session(self, user_id: str) -> ConsumerSession:
        if user_id not in self._sessions:
            raise UnknownUserError(f"no session has been opened for {user_id!r}")
        return self._sessions[user_id]

    def gateway(self):
        """The platform's :class:`~repro.api.gateway.PlatformGateway`.

        The blessed entry point for every client operation (register, login,
        query, buy, negotiate, recommendations, find-similar, admin stats):
        one instance per platform, created lazily, configured by the
        ``api_*`` fields of :class:`PlatformConfig`.  The legacy
        :class:`~repro.ecommerce.session.ConsumerSession` workflow methods
        survive as deprecation shims over the same code paths.
        """
        if self._gateway is None:
            # Imported here: repro.api sits above the ecommerce layer.
            from repro.api.gateway import PlatformGateway

            self._gateway = PlatformGateway(self)
        return self._gateway

    # -- platform-wide views --------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.scheduler.clock.now

    def marketplace_names(self) -> List[str]:
        return [marketplace.name for marketplace in self.marketplaces]

    def catalog_view(self) -> ItemCatalogView:
        """A read-only view over every item any seller catalogues."""
        items: List[Item] = []
        for seller in self.sellers:
            items.extend(seller.catalog.items())
        return ItemCatalogView(items)

    def stats(self) -> Dict[str, object]:
        """Aggregate platform statistics used by benchmarks and examples."""
        payload: Dict[str, object] = {
            "now_ms": self.now,
            "network": self.network.stats(),
            "metrics": self.metrics.snapshot(),
            "marketplaces": {m.name: m.stats() for m in self.marketplaces},
            "consumers": sum(len(server.user_db) for server in self.buyer_servers),
            "online": sorted(
                user_id
                for server in self.buyer_servers
                for user_id in server.online_users()
            ),
            "buyer_servers": {
                server.name: len(server.user_db) for server in self.buyer_servers
            },
        }
        if self.fleet is not None:
            payload["shard_map"] = self.fleet.shard_map.as_dict()
            payload["fleet"] = {
                "servers": len(self.fleet.servers),
                "active_servers": len(self.fleet.servers) - len(self.fleet.retired),
                "retired": sorted(self.fleet.retired),
                "handbacks": self.fleet.handbacks,
                "splits": self.fleet.splits,
                "transferred_consumers": self.fleet.transferred_consumers,
            }
        return payload


def build_platform(
    num_marketplaces: int = 2,
    num_sellers: int = 2,
    items_per_seller: int = 30,
    seed: int = 0,
    config: Optional[PlatformConfig] = None,
    **overrides,
) -> ECommercePlatform:
    """Build a ready-to-use e-commerce platform.

    Either pass a full :class:`PlatformConfig` via ``config`` or use the
    keyword shortcuts; extra keyword arguments are applied to the config as
    attribute overrides (e.g. ``replicate_listings=True``).
    """
    if config is None:
        config = PlatformConfig(
            num_marketplaces=num_marketplaces,
            num_sellers=num_sellers,
            items_per_seller=items_per_seller,
            seed=seed,
        )
    for key, value in overrides.items():
        if not hasattr(config, key):
            raise ECommerceError(f"unknown platform configuration option {key!r}")
        setattr(config, key, value)
    return ECommercePlatform(config)
