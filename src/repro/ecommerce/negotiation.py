"""Bilateral price negotiation (the "negotiations" trading service of §3.2).

The mobile buyer agent bargains on the consumer's behalf: it opens below the
list price and concedes upwards; the seller side (represented by the
marketplace, holding the listing's reserve price) opens at list price and
concedes downwards.  Both sides use a time-dependent concession strategy; the
negotiation succeeds as soon as one side's offer crosses the other's, or fails
after a bounded number of rounds.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import HandshakeError, NegotiationError
from repro.adversarial.handshake import HandshakeBroker, HandshakeTranscript
from repro.core.items import Item

__all__ = ["NegotiationOffer", "NegotiationOutcome", "NegotiationService"]

_negotiation_ids = itertools.count(1)


@dataclass(frozen=True)
class NegotiationOffer:
    """One offer in a negotiation."""

    round_number: int
    party: str  # "buyer" or "seller"
    amount: float


@dataclass(frozen=True)
class NegotiationOutcome:
    """Result of a completed negotiation."""

    negotiation_id: str
    item_id: str
    agreed: bool
    final_price: float
    rounds: int
    offers: tuple

    @property
    def transcript(self) -> List[NegotiationOffer]:
        return list(self.offers)


class NegotiationService:
    """Runs buyer/seller bargaining sessions for a marketplace.

    With a :class:`~repro.adversarial.handshake.HandshakeBroker` attached
    (``PlatformConfig.handshake_trades``) every bargaining session must
    present a finalized handshake transcript, which the service redeems —
    one transcript entitles its holder to exactly one negotiation, so a
    replayed offer is refused before any bargaining happens.
    """

    def __init__(
        self,
        marketplace: str,
        max_rounds: int = 10,
        handshake: Optional[HandshakeBroker] = None,
    ) -> None:
        if max_rounds <= 0:
            raise NegotiationError("max_rounds must be positive")
        self.marketplace = marketplace
        self.max_rounds = max_rounds
        self.handshake = handshake
        #: negotiation_id → handshake_id of the redeemed transcript (only
        #: populated when a broker is attached, so the unsecured platform
        #: is byte-identical).
        self.handshakes: Dict[str, str] = {}
        self.completed: List[NegotiationOutcome] = []

    def negotiate(
        self,
        item: Item,
        buyer_max: float,
        seller_reserve: float,
        buyer_concession: float = 0.15,
        seller_concession: float = 0.10,
        handshake: Optional[HandshakeTranscript] = None,
    ) -> NegotiationOutcome:
        """Run one bargaining session to completion.

        Args:
            item: the merchandise under negotiation.
            buyer_max: the most the consumer is willing to pay.
            seller_reserve: the least the seller will accept.
            buyer_concession: per-round fractional concession of the buyer
                towards its maximum.
            seller_concession: per-round fractional concession of the seller
                towards its reserve.
            handshake: the finalized transcript entitling the buyer to this
                session; required (and redeemed) when the service enforces
                handshakes, ignored otherwise.

        Returns:
            The outcome; ``agreed`` is False when the zone of possible
            agreement was never reached within ``max_rounds``.
        """
        if self.handshake is not None:
            if handshake is None:
                raise HandshakeError(
                    f"marketplace {self.marketplace!r} requires a trade "
                    f"handshake to negotiate"
                )
            self.handshake.redeem(handshake)
        if buyer_max <= 0:
            raise NegotiationError("buyer maximum must be positive")
        if seller_reserve < 0:
            raise NegotiationError("seller reserve cannot be negative")
        if not 0.0 < buyer_concession <= 1.0 or not 0.0 < seller_concession <= 1.0:
            raise NegotiationError("concession rates must be in (0, 1]")

        negotiation_id = f"negotiation-{next(_negotiation_ids)}"
        offers: List[NegotiationOffer] = []
        buyer_offer = min(buyer_max, item.price * 0.6)
        seller_offer = max(seller_reserve, item.price)
        agreed = False
        final_price = 0.0
        rounds = 0

        for round_number in range(1, self.max_rounds + 1):
            rounds = round_number
            offers.append(NegotiationOffer(round_number, "buyer", round(buyer_offer, 2)))

            # Seller accepts when the buyer's offer reaches its reserve and is
            # at least as good as what the seller would counter with.
            if buyer_offer >= seller_reserve and buyer_offer >= seller_offer:
                agreed = True
                final_price = round(buyer_offer, 2)
                break

            offers.append(NegotiationOffer(round_number, "seller", round(seller_offer, 2)))

            # Buyer accepts when the seller's ask has come down to its budget.
            if seller_offer <= buyer_max:
                agreed = True
                final_price = round(seller_offer, 2)
                break

            # Both concede for the next round.
            buyer_offer = min(buyer_max, buyer_offer + buyer_concession * (buyer_max - buyer_offer))
            seller_offer = max(
                seller_reserve, seller_offer - seller_concession * (seller_offer - seller_reserve)
            )
            # Guard against stalling when concessions become negligible.
            if abs(buyer_max - buyer_offer) < 1e-9 and abs(seller_offer - seller_reserve) < 1e-9:
                if buyer_max >= seller_reserve:
                    agreed = True
                    final_price = round(seller_reserve, 2)
                break

        outcome = NegotiationOutcome(
            negotiation_id=negotiation_id,
            item_id=item.item_id,
            agreed=agreed,
            final_price=final_price,
            rounds=rounds,
            offers=tuple(offers),
        )
        if handshake is not None and self.handshake is not None:
            self.handshakes[negotiation_id] = handshake.handshake_id
        self.completed.append(outcome)
        return outcome
