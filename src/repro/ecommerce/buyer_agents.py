"""The functional agents of the Buyer Agent Server (Figure 3.2).

Five agent types cooperate, purely through message passing (§4.1 principle 6),
to provide the consumer recommendation mechanism:

- :class:`BuyerServerManagementAgent` (BSMA) — the manager: user registration
  and login, the lifecycle of every other agent, and the orchestration of the
  Figure 4.2 / 4.3 workflows, including deactivating a BRA while its MBA is
  away and authenticating the MBA when it returns (§4.1 principles 2-3).
- :class:`HttpAgent` (HttpA) — the web interface; translates consumer requests
  into agent messages and back.
- :class:`ProfileAgent` (PA) — creates and updates consumer profiles in UserDB
  using the Figure 4.5 learning rule; one per recommendation mechanism.
- :class:`BuyerRecommendAgent` (BRA) — one per online consumer: loads the
  profile, prepares mobile-agent tasks, reports behaviour to the PA and
  generates recommendation information with the similarity algorithm.
- :class:`MobileBuyerAgent` (MBA) — created by the BRA per task; migrates to
  the marketplaces, executes the assigned query / buy / auction / negotiation
  and migrates back with the results.

Agents never keep direct references to shared services (databases, the
recommendation engine): they fetch them from their host's service registry per
message, which keeps their own state serialisable for migration and
deactivation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import (
    AuthenticationError,
    ECommerceError,
    LoginError,
    MarketplaceError,
    TransactionError,
    UnknownUserError,
)
from repro.agents.aglet import Aglet
from repro.agents.messages import Message, MessageKinds, Reply
from repro.core.items import Item
from repro.core.profile import Profile
from repro.core.profile_learning import FeedbackEvent
from repro.core.ratings import Interaction, InteractionKind

__all__ = [
    "BuyerServerManagementAgent",
    "HttpAgent",
    "ProfileAgent",
    "BuyerRecommendAgent",
    "MobileBuyerAgent",
]


# ---------------------------------------------------------------------------
# Profile Agent (PA)
# ---------------------------------------------------------------------------


class ProfileAgent(Aglet):
    """Creates and updates consumer profiles (one PA per mechanism)."""

    agent_type = "PA"

    def on_creation(self) -> None:
        self.updates_applied = 0

    def _user_db(self):
        return self.context.host.service("user-db")

    def _learner(self):
        return self.context.host.service("profile-learner")

    def handle_message(self, message: Message) -> Reply:
        if message.kind == MessageKinds.PROFILE_LOAD:
            return self._handle_load(message)
        if message.kind == MessageKinds.BEHAVIOUR_REPORT:
            return self._handle_behaviour(message)
        return super().handle_message(message)

    def _handle_load(self, message: Message) -> Reply:
        user_id = message.require("user_id")
        try:
            profile = self._user_db().profile(user_id)
        except UnknownUserError as exc:
            return Reply.failure(message.kind, str(exc), message.correlation_id)
        return message.reply(profile=profile.to_dict())

    def _handle_behaviour(self, message: Message) -> Reply:
        """Apply one behaviour report: learning rule + observational rating."""
        user_id = message.require("user_id")
        item: Item = message.require("item")
        kind = InteractionKind(message.require("kind"))
        timestamp = float(message.argument("timestamp", self.now))
        rating = message.argument("rating")
        marketplace = message.argument("marketplace", "")

        user_db = self._user_db()
        try:
            profile = user_db.profile(user_id)
        except UnknownUserError as exc:
            return Reply.failure(message.kind, str(exc), message.correlation_id)

        event = FeedbackEvent(
            user_id=user_id, item=item, kind=kind, timestamp=timestamp, rating=rating
        )
        self._learner().apply(profile, event)
        user_db.record_interaction(
            Interaction(
                user_id=user_id,
                item_id=item.item_id,
                kind=kind,
                timestamp=timestamp,
                value=float(rating) if rating is not None else 0.0,
                category=item.category,
                marketplace=marketplace,
            )
        )
        self.updates_applied += 1
        return message.reply(profile_events=profile.feedback_events)


# ---------------------------------------------------------------------------
# Buyer Recommend Agent (BRA)
# ---------------------------------------------------------------------------


class BuyerRecommendAgent(Aglet):
    """Represents one online consumer inside the recommendation mechanism."""

    agent_type = "BRA"

    def on_creation(self, user_id: str = "") -> None:
        if not user_id:
            raise LoginError("a BRA must be created for a specific consumer")
        self.user_id = user_id
        self.profile_snapshot: Dict[str, Any] = {}
        self.tasks_prepared = 0
        self.recommendations_generated = 0

    # -- host services -----------------------------------------------------------

    def _profile_agent(self):
        agents = self.context.active_aglets("PA")
        if not agents:
            raise ECommerceError("no profile agent is running on this buyer agent server")
        return agents[0]

    def _recommendation_service(self):
        return self.context.host.service("recommendation-service")

    def _user_db(self):
        return self.context.host.service("user-db")

    def _log(self, category: str, target: str = "", **payload: Any) -> None:
        self.context.transport.event_log.record(
            self.now, category, self.aglet_id, target or self.location, **payload
        )

    # -- message handling -----------------------------------------------------------

    def handle_message(self, message: Message) -> Reply:
        handlers = {
            "bra.load-profile": self._handle_load_profile,
            "bra.prepare-task": self._handle_prepare_task,
            "bra.complete-query": self._handle_complete_query,
            "bra.complete-trade": self._handle_complete_trade,
            MessageKinds.RECOMMENDATIONS: self._handle_recommendations,
            MessageKinds.RATE: self._handle_rate,
            MessageKinds.CROSS_SELL: self._handle_cross_sell,
        }
        handler = handlers.get(message.kind)
        if handler is None:
            return super().handle_message(message)
        return handler(message)

    def _handle_load_profile(self, message: Message) -> Reply:
        """Figure 4.2: load the consumer's profile from UserDB via the PA."""
        reply = self.send_to(
            self._profile_agent(), MessageKinds.PROFILE_LOAD, user_id=self.user_id
        )
        if not reply.ok:
            return Reply.failure(message.kind, reply.error, message.correlation_id)
        self.profile_snapshot = reply.require("profile")
        self._log("workflow.profile-loaded")
        return message.reply(loaded=True, categories=len(self.profile_snapshot.get("categories", {})))

    def _handle_prepare_task(self, message: Message) -> Reply:
        """Create an MBA for a query / buy / auction / negotiation task."""
        task = message.require("task")
        params = dict(message.argument("params", {}))
        itinerary = list(message.require("itinerary"))
        if not itinerary:
            return Reply.failure(message.kind, "task itinerary is empty", message.correlation_id)

        mba = self.context.create(
            MobileBuyerAgent,
            owner=self.user_id,
            user_id=self.user_id,
            task=task,
            params=params,
            itinerary=itinerary,
            home=self.location,
        )
        # §4.1 principle 2: the MBA leaves home carrying a signed credential it
        # must present when it migrates back.
        credential = self.context.auth.issue(mba.aglet_id, owner=self.user_id, now=self.now)
        mba.credential = credential
        self.tasks_prepared += 1
        self._log("workflow.mba-created", mba.aglet_id, task=task)
        return message.reply(mba_id=mba.aglet_id, itinerary=itinerary, task=task)

    def _handle_complete_query(self, message: Message) -> Reply:
        """Figure 4.2 completion: record behaviour + generate recommendations."""
        results: List[Dict[str, Any]] = list(message.argument("results", []))
        keyword = message.argument("keyword", "")
        report_top = int(message.argument("report_top", 3))

        # Record the query behaviour on the most relevant results so the
        # profile learns what the consumer is looking at (§4.1 principle 4).
        profile_agent = self._profile_agent()
        for entry in results[:report_top]:
            self.send_to(
                profile_agent,
                MessageKinds.BEHAVIOUR_REPORT,
                user_id=self.user_id,
                item=entry["item"],
                kind=InteractionKind.QUERY.value,
                timestamp=self.now,
                marketplace=entry.get("marketplace", ""),
            )
        if results:
            self._log("workflow.behaviour-reported", kind="query", count=min(report_top, len(results)))

        service = self._recommendation_service()
        query_items = [entry["item"] for entry in results]
        recommendations = service.recommend_for_query(self.user_id, query_items)
        self.recommendations_generated += 1
        self._log("workflow.recommendations-generated", count=len(recommendations))
        return message.reply(
            results=results,
            recommendations=recommendations,
            keyword=keyword,
        )

    def _handle_complete_trade(self, message: Message) -> Reply:
        """Figure 4.3 completion: record the trade and update the profile."""
        item: Item = message.require("item")
        kind = InteractionKind(message.require("kind"))
        transaction = message.argument("transaction")
        marketplace = message.argument("marketplace", "")

        reply = self.send_to(
            self._profile_agent(),
            MessageKinds.BEHAVIOUR_REPORT,
            user_id=self.user_id,
            item=item,
            kind=kind.value,
            timestamp=self.now,
            marketplace=marketplace,
        )
        if not reply.ok:
            return Reply.failure(message.kind, reply.error, message.correlation_id)
        self._log("workflow.behaviour-reported", kind=kind.value, item_id=item.item_id)

        if transaction is not None:
            self._user_db().record_transaction(transaction)
            self._log("workflow.transaction-recorded", item_id=item.item_id,
                      price=transaction.price)

        service = self._recommendation_service()
        recommendations = service.recommend(self.user_id, k=5, category=item.category)
        self.recommendations_generated += 1
        self._log("workflow.recommendations-generated", count=len(recommendations))
        return message.reply(transaction=transaction, recommendations=recommendations)

    def _handle_recommendations(self, message: Message) -> Reply:
        """Stand-alone recommendation request (no marketplace round trip)."""
        k = int(message.argument("k", 10))
        category = message.argument("category")
        service = self._recommendation_service()
        recommendations = service.recommend(self.user_id, k=k, category=category)
        self.recommendations_generated += 1
        self._log("workflow.recommendations-generated", count=len(recommendations))
        return message.reply(recommendations=recommendations)

    def _handle_rate(self, message: Message) -> Reply:
        """Explicit rating of merchandise; fed to the PA as a RATE behaviour."""
        item: Item = message.require("item")
        rating = float(message.require("rating"))
        if not 0.0 <= rating <= 5.0:
            return Reply.failure(
                message.kind, f"rating must be in [0, 5], got {rating}", message.correlation_id
            )
        reply = self.send_to(
            self._profile_agent(),
            MessageKinds.BEHAVIOUR_REPORT,
            user_id=self.user_id,
            item=item,
            kind=InteractionKind.RATE.value,
            timestamp=self.now,
            rating=rating,
        )
        if not reply.ok:
            return Reply.failure(message.kind, reply.error, message.correlation_id)
        self._log("workflow.behaviour-reported", kind="rate", item_id=item.item_id,
                  rating=rating)
        return message.reply(rating=rating, item_id=item.item_id)

    def _handle_cross_sell(self, message: Message) -> Reply:
        """Tied-sale suggestions for the consumer's basket or purchase history."""
        k = int(message.argument("k", 5))
        category = message.argument("category")
        basket = message.argument("basket")
        service = self._recommendation_service()
        recommendations = service.cross_sell_for(
            self.user_id, k=k, category=category, basket=basket
        )
        self.recommendations_generated += 1
        self._log("workflow.recommendations-generated", count=len(recommendations),
                  kind="cross-sell")
        return message.reply(recommendations=recommendations)


# ---------------------------------------------------------------------------
# Mobile Buyer Agent (MBA)
# ---------------------------------------------------------------------------


class MobileBuyerAgent(Aglet):
    """Migrates to marketplaces and executes the task its BRA assigned."""

    agent_type = "MBA"

    def on_creation(
        self,
        user_id: str = "",
        task: str = "query",
        params: Optional[Dict[str, Any]] = None,
        itinerary: Optional[List[str]] = None,
        home: str = "",
    ) -> None:
        self.user_id = user_id
        self.task = task
        self.params = dict(params or {})
        self.itinerary = list(itinerary or [])
        self.home = home or self.location
        self.visited: List[str] = []
        self.skipped: List[str] = []
        self.results: List[Dict[str, Any]] = []
        self.transaction = None
        self.outcome: Dict[str, Any] = {}
        self.credential = None

    # -- marketplace interaction -------------------------------------------------

    def _market_agent(self):
        agents = self.context.active_aglets("MarketAgent")
        if not agents:
            raise MarketplaceError(
                f"MBA {self.aglet_id} is on {self.location!r} which runs no marketplace agent"
            )
        return agents[0]

    def _log(self, category: str, **payload: Any) -> None:
        self.context.transport.event_log.record(
            self.now, category, self.aglet_id, self.location, **payload
        )

    def execute_here(self) -> None:
        """Execute the assigned task at the current marketplace."""
        market = self._market_agent()
        if self.task == "query":
            reply = self.send_to(
                market,
                MessageKinds.MARKET_QUERY,
                keyword=self.params.get("keyword", ""),
                category=self.params.get("category"),
            )
            if reply.ok:
                self.results.extend(reply.value("results", []))
            self._log("workflow.marketplace-queried",
                      found=len(reply.value("results", [])) if reply.ok else 0)
        elif self.task == "buy":
            reply = self.send_to(
                market,
                MessageKinds.MARKET_BUY,
                item_id=self.params["item_id"],
                user_id=self.user_id,
            )
            self.outcome = dict(reply.payload)
            self.outcome["ok"] = reply.ok
            self.outcome["error"] = reply.error
            if reply.ok:
                self.transaction = reply.value("transaction")
            self._log("workflow.trade-executed", task="buy", ok=reply.ok)
        elif self.task == "auction":
            reply = self.send_to(
                market,
                MessageKinds.MARKET_AUCTION_BID,
                item_id=self.params["item_id"],
                user_id=self.user_id,
                max_price=self.params["max_price"],
            )
            self.outcome = dict(reply.payload)
            self.outcome["ok"] = reply.ok
            self.outcome["error"] = reply.error
            if reply.ok:
                self.transaction = reply.value("transaction")
            self._log("workflow.trade-executed", task="auction", ok=reply.ok,
                      won=bool(reply.value("won", False)))
        elif self.task == "negotiate":
            reply = self.send_to(
                market,
                MessageKinds.MARKET_NEGOTIATE,
                item_id=self.params["item_id"],
                user_id=self.user_id,
                max_price=self.params["max_price"],
            )
            self.outcome = dict(reply.payload)
            self.outcome["ok"] = reply.ok
            self.outcome["error"] = reply.error
            if reply.ok:
                self.transaction = reply.value("transaction")
            self._log("workflow.trade-executed", task="negotiate", ok=reply.ok,
                      agreed=bool(reply.value("agreed", False)))
        else:
            raise ECommerceError(f"MBA {self.aglet_id} has an unknown task {self.task!r}")
        self.visited.append(self.location)

    # -- itinerary control -------------------------------------------------------

    def on_arrival(self, origin: str) -> None:
        if self.location == self.home:
            self._log("workflow.mba-returned", origin=origin)
            return
        self.execute_here()
        remaining = [
            host for host in self.itinerary
            if host not in self.visited and host not in self.skipped
        ]
        # Purchases stop at the first successful transaction; queries visit
        # every marketplace on the itinerary (capability claim CAP-2).
        if self.task != "query" and self.transaction is not None:
            remaining = []
        # Mobile agents are "robust and fault-tolerant" (§1): a marketplace
        # that became unreachable mid-itinerary is skipped, not fatal.
        from repro.errors import DispatchError, NetworkError

        while remaining:
            next_host = remaining.pop(0)
            try:
                self.dispatch_to(next_host)
                return
            except (DispatchError, NetworkError):
                self.skipped.append(next_host)
                self._log("workflow.marketplace-skipped", skipped=next_host)
        self.dispatch_to(self.home)

    # -- authentication and result collection ------------------------------------------

    def handle_message(self, message: Message) -> Reply:
        if message.kind == MessageKinds.AUTHENTICATE:
            challenge = message.require("challenge")
            if self.credential is None:
                return Reply.failure(message.kind, "MBA carries no credential",
                                     message.correlation_id)
            from repro.agents.security import AuthenticationService

            response = AuthenticationService.respond(self.credential, challenge)
            return message.reply(credential=self.credential, response=response)
        if message.kind == "mba.collect-results":
            return message.reply(
                results=self.results,
                transaction=self.transaction,
                outcome=self.outcome,
                visited=self.visited,
                task=self.task,
            )
        return super().handle_message(message)


# ---------------------------------------------------------------------------
# Http Agent (HttpA)
# ---------------------------------------------------------------------------


class HttpAgent(Aglet):
    """Web interface: translates consumer requests into agent messages."""

    agent_type = "HttpA"

    #: Consumer-facing message kinds HttpA forwards to the BSMA.
    FORWARDED_KINDS = (
        MessageKinds.REGISTER,
        MessageKinds.LOGIN,
        MessageKinds.LOGOUT,
        MessageKinds.QUERY,
        MessageKinds.BUY,
        MessageKinds.AUCTION_JOIN,
        MessageKinds.NEGOTIATE,
        MessageKinds.RECOMMENDATIONS,
        MessageKinds.RATE,
        MessageKinds.HOTTEST,
        MessageKinds.CROSS_SELL,
    )

    def on_creation(self, bsma_id: str = "") -> None:
        self.bsma_id = bsma_id
        self.requests_served = 0

    def handle_message(self, message: Message) -> Reply:
        if message.kind not in self.FORWARDED_KINDS:
            return super().handle_message(message)
        log = self.context.transport.event_log
        log.record(self.now, "http.request-received", message.sender or "browser",
                   self.aglet_id, kind=message.kind)
        forwarded = Message(
            kind=message.kind, payload=dict(message.payload), sender=self.aglet_id,
            correlation_id=message.correlation_id,
        )
        reply = self.context.send_message(self.bsma_id, forwarded)
        self.requests_served += 1
        log.record(self.now, "http.reply-sent", self.aglet_id,
                   message.sender or "browser", kind=message.kind, ok=reply.ok)
        return reply


# ---------------------------------------------------------------------------
# Buyer Server Management Agent (BSMA)
# ---------------------------------------------------------------------------


class BuyerServerManagementAgent(Aglet):
    """Manager of the buyer agent server and orchestrator of its workflows."""

    agent_type = "BSMA"

    def on_creation(self, home: str = "", coordinator_id: str = "") -> None:
        self.home = home
        self.coordinator_id = coordinator_id
        self.pa_id = ""
        self.httpa_id = ""
        self.bra_ids: Dict[str, str] = {}
        self.initialized = False

    # -- Figure 4.1: arrival on the buyer agent server host --------------------------

    def on_arrival(self, origin: str) -> None:
        if self.location != self.home:
            return
        self._initialize_buyer_server()

    def _initialize_buyer_server(self) -> None:
        """Figure 4.1 steps 4-6: create PA, HttpA and initialise the databases."""
        if self.initialized:
            return
        log = self.context.transport.event_log
        host = self.context.host

        # Step 6 prerequisites may already be attached by the BuyerAgentServer
        # wrapper; create them here otherwise so the protocol is self-contained.
        if not host.has_service("user-db"):
            from repro.ecommerce.databases import UserDB

            host.attach_service("user-db", UserDB())
        if not host.has_service("bsmdb"):
            from repro.ecommerce.databases import BSMDB

            host.attach_service("bsmdb", BSMDB())
        if not host.has_service("profile-learner"):
            from repro.core.profile_learning import ProfileLearner

            host.attach_service("profile-learner", ProfileLearner())
        log.record(self.now, "creation.databases-initialized", self.aglet_id, self.location)

        pa = self.context.create(ProfileAgent, owner=self.location)
        self.pa_id = pa.aglet_id
        log.record(self.now, "creation.pa-created", self.aglet_id, pa.aglet_id)

        httpa = self.context.create(HttpAgent, owner=self.location, bsma_id=self.aglet_id)
        self.httpa_id = httpa.aglet_id
        log.record(self.now, "creation.httpa-created", self.aglet_id, httpa.aglet_id)

        # Learn the platform topology from the coordinator and record it in BSMDB.
        if self.coordinator_id:
            reply = self.send_to(self.coordinator_id, "platform.topology")
            if reply.ok:
                bsmdb = host.service("bsmdb")
                bsmdb.set_coordinator(reply.value("coordinator", ""))
                for marketplace in reply.value("marketplaces", []):
                    bsmdb.add_marketplace(marketplace)
                for seller in reply.value("seller_servers", []):
                    bsmdb.add_seller_server(seller)
        self.initialized = True
        log.record(self.now, "creation.buyer-server-ready", self.aglet_id, self.location)

    # -- host services ------------------------------------------------------------------

    def _user_db(self):
        return self.context.host.service("user-db")

    def _bsmdb(self):
        return self.context.host.service("bsmdb")

    def _log(self, category: str, target: str = "", **payload: Any) -> None:
        self.context.transport.event_log.record(
            self.now, category, self.aglet_id, target or self.location, **payload
        )

    # -- message handling -----------------------------------------------------------------

    def handle_message(self, message: Message) -> Reply:
        handlers = {
            MessageKinds.REGISTER: self._handle_register,
            MessageKinds.LOGIN: self._handle_login,
            MessageKinds.LOGOUT: self._handle_logout,
            MessageKinds.QUERY: self._handle_query,
            MessageKinds.BUY: self._handle_trade,
            MessageKinds.AUCTION_JOIN: self._handle_trade,
            MessageKinds.NEGOTIATE: self._handle_trade,
            MessageKinds.RECOMMENDATIONS: self._handle_recommendations,
            MessageKinds.RATE: self._forward_to_bra,
            MessageKinds.CROSS_SELL: self._forward_to_bra,
            MessageKinds.HOTTEST: self._handle_hottest,
        }
        handler = handlers.get(message.kind)
        if handler is None:
            return super().handle_message(message)
        try:
            return handler(message)
        except (LoginError, UnknownUserError, ECommerceError, TransactionError,
                AuthenticationError) as exc:
            return Reply.failure(message.kind, str(exc), message.correlation_id)

    # -- registration / login / logout --------------------------------------------------------

    def _handle_register(self, message: Message) -> Reply:
        user_id = message.require("user_id")
        display_name = message.argument("display_name", user_id)
        record = self._user_db().register(user_id, display_name, timestamp=self.now)
        self._log("login.registered", user_id)
        return message.reply(user_id=record.user_id, registered_at=record.registered_at)

    def _handle_login(self, message: Message) -> Reply:
        """§4.1 principle 1: the BRA is created at login, not at registration."""
        user_id = message.require("user_id")
        user_db = self._user_db()
        if not user_db.is_registered(user_id):
            raise LoginError(f"user {user_id!r} must register before logging in")
        if user_id in self.bra_ids:
            raise LoginError(f"user {user_id!r} is already logged in")

        bra = self.context.create(BuyerRecommendAgent, owner=user_id, user_id=user_id)
        self.bra_ids[user_id] = bra.aglet_id
        user_db.record_login(user_id, self.now)
        self._bsmdb().record_bra_online(bra.aglet_id, user_id, self.now)
        self._log("login.bra-created", bra.aglet_id, user_id=user_id)

        reply = self.send_to(bra, "bra.load-profile")
        if not reply.ok:
            return Reply.failure(message.kind, reply.error, message.correlation_id)
        self._log("login.profile-loaded", bra.aglet_id, user_id=user_id)
        return message.reply(user_id=user_id, bra_id=bra.aglet_id)

    def _handle_logout(self, message: Message) -> Reply:
        """§4.1 principle 1: the BRA terminates at logout."""
        user_id = message.require("user_id")
        bra_id = self.bra_ids.pop(user_id, None)
        if bra_id is None:
            raise LoginError(f"user {user_id!r} is not logged in")
        if self.context.is_deactivated(bra_id):
            self.context.activate(bra_id)
        self.context.dispose(self.context.get_local(bra_id))
        self._bsmdb().record_bra_offline(user_id)
        self._log("login.bra-disposed", bra_id, user_id=user_id)
        return message.reply(user_id=user_id)

    # -- the BRA lifecycle helpers used by the workflows ------------------------------------------

    def _require_bra(self, user_id: str) -> str:
        if user_id not in self.bra_ids:
            raise LoginError(f"user {user_id!r} is not logged in")
        return self.bra_ids[user_id]

    def _active_bra(self, user_id: str):
        """The consumer's BRA, reactivated from storage when necessary."""
        bra_id = self._require_bra(user_id)
        if self.context.is_deactivated(bra_id):
            bra = self.context.activate(bra_id)
            self._bsmdb().record_bra_deactivated(user_id, False)
            self._log("workflow.bra-activated", bra_id, user_id=user_id)
            return bra
        return self.context.get_local(bra_id)

    def _deactivate_bra(self, user_id: str) -> None:
        bra_id = self._require_bra(user_id)
        if not self.context.is_deactivated(bra_id):
            self.context.deactivate(self.context.get_local(bra_id))
            self._bsmdb().record_bra_deactivated(user_id, True)
            self._log("workflow.bra-deactivated", bra_id, user_id=user_id)

    def _marketplaces(self) -> List[str]:
        marketplaces = self._bsmdb().marketplaces
        if not marketplaces:
            raise ECommerceError("no marketplaces are registered in BSMDB")
        return marketplaces

    def _run_mba_roundtrip(self, user_id: str, bra, task: str,
                           params: Dict[str, Any], itinerary: List[str]):
        """Shared Figure 4.2/4.3 core: prepare MBA, deactivate BRA, dispatch,
        authenticate on return, collect results, reactivate BRA."""
        # Marketplaces that are known to be down are dropped from the
        # itinerary up front (mobile-agent fault tolerance, §1); an itinerary
        # with nothing reachable is an error the consumer must see.
        network = self.context.transport.network
        reachable = [
            host for host in itinerary
            if network.is_host_up(host) and self.context.directory.has_context(host)
        ]
        unreachable = [host for host in itinerary if host not in reachable]
        if unreachable:
            self._log("workflow.itinerary-filtered", task=task, skipped=unreachable)
        if not reachable:
            raise ECommerceError(
                f"none of the marketplaces {itinerary!r} is currently reachable"
            )
        itinerary = reachable

        prepare = self.send_to(
            bra, "bra.prepare-task", task=task, params=params, itinerary=itinerary
        )
        if not prepare.ok:
            raise ECommerceError(prepare.error)
        mba_id = prepare.require("mba_id")
        self._bsmdb().record_mba_dispatched(
            mba_id, owner=user_id, bra_id=bra.aglet_id, task=task,
            itinerary=itinerary, timestamp=self.now,
        )
        self._log("workflow.mba-recorded", mba_id, task=task)

        # §4.1 principle 3: the BRA is stored away while its MBA travels.
        self._deactivate_bra(user_id)

        mba = self.context.get_local(mba_id)
        self._log("workflow.mba-dispatched", mba_id, first_stop=itinerary[0])
        # The dispatch call returns once the MBA has worked through its whole
        # itinerary and migrated back home (discrete-event simulation).
        self.context.dispatch(mba, itinerary[0])

        mba = self.context.get_local(mba_id)

        # §4.1 principle 2: authenticate the returning MBA before trusting it.
        challenge = self.context.auth.challenge()
        auth_reply = self.send_to(mba, MessageKinds.AUTHENTICATE, challenge=challenge)
        if not auth_reply.ok:
            raise AuthenticationError(auth_reply.error)
        self.context.auth.verify_response(
            auth_reply.require("credential"), challenge, auth_reply.require("response"),
            now=self.now,
        )
        self._bsmdb().record_mba_returned(mba_id, self.now, authenticated=True)
        self._log("workflow.mba-authenticated", mba_id)

        collected = self.send_to(mba, "mba.collect-results")
        self.context.dispose(mba)

        bra = self._active_bra(user_id)
        return bra, collected

    # -- Figure 4.2: merchandise query ---------------------------------------------------------------

    def _handle_query(self, message: Message) -> Reply:
        user_id = message.require("user_id")
        keyword = message.argument("keyword", "")
        category = message.argument("category")
        self._log("workflow.query-received", user_id, keyword=keyword)

        bra = self._active_bra(user_id)
        marketplaces = list(message.argument("marketplaces", [])) or self._marketplaces()
        params = {"keyword": keyword, "category": category}
        bra, collected = self._run_mba_roundtrip(user_id, bra, "query", params, marketplaces)

        completion = self.send_to(
            bra, "bra.complete-query",
            results=collected.value("results", []), keyword=keyword,
        )
        if not completion.ok:
            return Reply.failure(message.kind, completion.error, message.correlation_id)
        self._log("workflow.query-completed", user_id,
                  results=len(completion.value("results", [])))
        return message.reply(
            results=completion.value("results", []),
            recommendations=completion.value("recommendations", []),
            marketplaces_visited=collected.value("visited", []),
        )

    # -- Figure 4.3: buy / auction / negotiation --------------------------------------------------------

    _TRADE_TASKS = {
        MessageKinds.BUY: ("buy", InteractionKind.BUY),
        MessageKinds.AUCTION_JOIN: ("auction", InteractionKind.AUCTION_BID),
        MessageKinds.NEGOTIATE: ("negotiate", InteractionKind.NEGOTIATE),
    }

    def _handle_trade(self, message: Message) -> Reply:
        user_id = message.require("user_id")
        item: Item = message.require("item")
        marketplace = message.argument("marketplace")
        task, behaviour = self._TRADE_TASKS[message.kind]
        self._log("workflow.trade-received", user_id, task=task, item_id=item.item_id)

        bra = self._active_bra(user_id)
        itinerary = [marketplace] if marketplace else self._marketplaces()[:1]
        params: Dict[str, Any] = {"item_id": item.item_id}
        if message.argument("max_price") is not None:
            params["max_price"] = float(message.require("max_price"))
        elif task in ("auction", "negotiate"):
            raise ECommerceError(f"a {task} task needs a max_price")

        bra, collected = self._run_mba_roundtrip(user_id, bra, task, params, itinerary)
        outcome = collected.value("outcome", {})
        transaction = collected.value("transaction")

        completion = self.send_to(
            bra, "bra.complete-trade",
            item=item, kind=behaviour.value, transaction=transaction,
            marketplace=itinerary[0],
        )
        if not completion.ok:
            return Reply.failure(message.kind, completion.error, message.correlation_id)
        self._log("workflow.trade-completed", user_id, task=task,
                  succeeded=transaction is not None)
        return message.reply(
            succeeded=transaction is not None,
            transaction=transaction,
            outcome=outcome,
            recommendations=completion.value("recommendations", []),
        )

    # -- stand-alone recommendations --------------------------------------------------------------------

    def _handle_recommendations(self, message: Message) -> Reply:
        user_id = message.require("user_id")
        bra = self._active_bra(user_id)
        reply = self.send_to(
            bra, MessageKinds.RECOMMENDATIONS,
            k=message.argument("k", 10), category=message.argument("category"),
        )
        return reply

    def _forward_to_bra(self, message: Message) -> Reply:
        """Forward a consumer request to their BRA unchanged (rate, cross-sell)."""
        user_id = message.require("user_id")
        bra = self._active_bra(user_id)
        forwarded = Message(
            kind=message.kind, payload=dict(message.payload), sender=self.aglet_id,
            correlation_id=message.correlation_id,
        )
        return self.context.send_message(bra, forwarded)

    def _handle_hottest(self, message: Message) -> Reply:
        """§5.2 future-work item 2: the weekly hottest merchandise list."""
        service = self.context.host.service("recommendation-service")
        recommendations = service.weekly_hottest_list(
            k=int(message.argument("k", 10)), category=message.argument("category"),
        )
        return message.reply(recommendations=recommendations)
