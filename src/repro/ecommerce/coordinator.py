"""Coordinator server and Coordinator Agent (CA).

"There is a Coordinator Agent (CA) in Coordinator Server.  The CA is static in
Coordinator Server and manages an E-Commerce (EC) domain." (§3.2)

The CA keeps the registry of marketplaces, seller servers and buyer agent
servers in the domain, answers topology queries, and performs the first three
steps of the Figure 4.1 bootstrap: on a ``CREATE_BUYER_SERVER`` request it
creates a BSMA on the coordinator host and dispatches it to the requesting
buyer agent server host.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import RegistrationError
from repro.agents.aglet import Aglet
from repro.agents.context import AgletContext
from repro.agents.messages import Message, MessageKinds, Reply

__all__ = ["CoordinatorAgent", "CoordinatorServer"]


class CoordinatorAgent(Aglet):
    """Static agent managing the EC domain registry."""

    agent_type = "CA"

    def on_creation(self) -> None:
        self.marketplaces: List[str] = []
        self.seller_servers: List[str] = []
        self.buyer_servers: List[str] = []
        # host → shard ids, for buyer servers that own partitions of the
        # consumer community (multi-server mode).  A host normally owns one
        # shard; a promotion failover hands a dead server's shards to the
        # promoted replica holder, so the value is a list.
        self.shard_map: Dict[str, List[int]] = {}
        # Epoch of the fleet's versioned ShardMap as of the last sync — 0
        # until the first elastic topology change arrives.  Syncs carry the
        # epoch so a reordered or duplicate delivery can never roll the
        # registry backwards.
        self.shard_map_epoch: int = 0
        # primary host → replica hosts, for buyer servers that stream their
        # UserDB mutations to peers (replication mode).  The CA records the
        # topology so the domain registry knows where a crashed server's
        # consumers can be recovered from.
        self.replica_map: Dict[str, List[str]] = {}

    def handle_message(self, message: Message) -> Reply:
        if message.kind == MessageKinds.SERVER_REGISTER:
            return self._handle_register(message)
        if message.kind == MessageKinds.CREATE_BUYER_SERVER:
            return self._handle_create_buyer_server(message)
        if message.kind == "platform.register-replication":
            return self._handle_register_replication(message)
        if message.kind == "platform.promote-shard":
            return self._handle_promote_shard(message)
        if message.kind == "platform.shard-map":
            return self._handle_shard_map_sync(message)
        if message.kind == "platform.topology":
            return message.reply(
                marketplaces=list(self.marketplaces),
                seller_servers=list(self.seller_servers),
                buyer_servers=list(self.buyer_servers),
                shard_map={host: list(ids) for host, ids in self.shard_map.items()},
                shard_map_epoch=self.shard_map_epoch,
                replica_map={k: list(v) for k, v in self.replica_map.items()},
                coordinator=self.location,
            )
        return super().handle_message(message)

    def _handle_shard_map_sync(self, message: Message) -> Reply:
        """An elastic topology change: replace the shard registry wholesale.

        The fleet's versioned :class:`~repro.core.shard_map.ShardMap` is the
        source of truth; the CA mirrors it.  Unlike the surgical
        promote-shard update, a sync ships the complete shard → owner
        assignment with its epoch, and a sync at or below the recorded
        epoch is acknowledged but ignored — last-writer-wins by version,
        never by arrival order.
        """
        epoch = int(message.require("epoch"))
        assignments = message.require("assignments")
        if epoch <= self.shard_map_epoch:
            return message.reply(applied=False, epoch=self.shard_map_epoch)
        rebuilt: Dict[str, List[int]] = {}
        for shard, host in assignments.items():
            rebuilt.setdefault(host, []).append(int(shard))
        for owned in rebuilt.values():
            owned.sort()
        self.shard_map = rebuilt
        self.shard_map_epoch = epoch
        self.context.transport.event_log.record(
            self.now, "coordinator.shard-map-synced", self.location, self.location,
            epoch=epoch, shards=len(assignments), owners=sorted(rebuilt),
        )
        return message.reply(applied=True, epoch=epoch)

    def _handle_promote_shard(self, message: Message) -> Reply:
        """A promotion failover: move a dead primary's shards to its replica holder.

        The shard map is updated *in place* — the promoted host simply takes
        over the listed shard ids, no consumer re-registers — and the dead
        primary's retired replication stream leaves the replica map (the
        promoted server's own replication now carries the adopted state).
        """
        dead = message.require("dead")
        promoted = message.require("promoted")
        shards = [int(shard) for shard in message.require("shards")]
        for host in (dead, promoted):
            if host not in self.buyer_servers:
                return Reply.failure(
                    message.kind,
                    f"unknown buyer server {host!r} in shard promotion",
                    message.correlation_id,
                )
        remaining = [
            shard for shard in self.shard_map.get(dead, []) if shard not in shards
        ]
        if remaining:
            self.shard_map[dead] = remaining
        else:
            self.shard_map.pop(dead, None)
        owned = self.shard_map.setdefault(promoted, [])
        for shard in shards:
            if shard not in owned:
                owned.append(shard)
        owned.sort()
        self.replica_map.pop(dead, None)
        self.context.transport.event_log.record(
            self.now, "coordinator.shard-promoted", promoted, self.location,
            dead=dead, shards=shards,
        )
        return message.reply(promoted=promoted, shards=shards)

    def _handle_register_replication(self, message: Message) -> Reply:
        primary = message.require("primary")
        replicas = list(message.require("replicas"))
        if primary not in self.buyer_servers:
            return Reply.failure(
                message.kind,
                f"unknown buyer server {primary!r} cannot register replication",
                message.correlation_id,
            )
        unknown = [host for host in replicas if host not in self.buyer_servers]
        if unknown:
            return Reply.failure(
                message.kind,
                f"replica hosts {unknown!r} are not registered buyer servers",
                message.correlation_id,
            )
        self.replica_map[primary] = replicas
        self.context.transport.event_log.record(
            self.now, "coordinator.replication-registered", primary, self.location,
            replicas=replicas,
        )
        return message.reply(registered=True, primary=primary, replicas=replicas)

    def _handle_register(self, message: Message) -> Reply:
        role = message.require("role")
        host = message.require("host")
        registry = {
            "marketplace": self.marketplaces,
            "seller": self.seller_servers,
            "buyer-server": self.buyer_servers,
        }.get(role)
        if registry is None:
            return Reply.failure(
                message.kind, f"unknown server role {role!r}", message.correlation_id
            )
        shard_id = message.payload.get("shard_id")
        if shard_id is not None and role != "buyer-server":
            # Validate before touching the registry so a refused registration
            # leaves no trace in the domain state.
            return Reply.failure(
                message.kind,
                f"only buyer servers own shards, not {role!r}",
                message.correlation_id,
            )
        if host not in registry:
            registry.append(host)
        if shard_id is not None:
            owned = self.shard_map.setdefault(host, [])
            if int(shard_id) not in owned:
                owned.append(int(shard_id))
                owned.sort()
        self.context.transport.event_log.record(
            self.now, "coordinator.server-registered", host, self.location, role=role,
        )
        return message.reply(registered=True, role=role)

    def _handle_create_buyer_server(self, message: Message) -> Reply:
        """Figure 4.1 steps 2-3: create a BSMA and dispatch it to the requester."""
        # Imported here to avoid a circular import at module load time: the
        # buyer agents module needs the message kinds defined above it.
        from repro.ecommerce.buyer_agents import BuyerServerManagementAgent

        target_host = message.require("host")
        if not self.context.directory.has_context(target_host):
            raise RegistrationError(
                f"cannot create a buyer agent server on unknown host {target_host!r}"
            )
        log = self.context.transport.event_log
        log.record(self.now, "creation.request-buyer-server", target_host, self.location)

        bsma = self.context.create(
            BuyerServerManagementAgent,
            owner=target_host,
            home=target_host,
            coordinator_id=self.aglet_id,
        )
        log.record(self.now, "creation.bsma-created", self.location, bsma.aglet_id)

        self.context.dispatch(bsma, target_host)
        log.record(self.now, "creation.bsma-dispatched", self.location, target_host,
                   bsma_id=bsma.aglet_id)

        if target_host not in self.buyer_servers:
            self.buyer_servers.append(target_host)
        return message.reply(bsma_id=bsma.aglet_id)


class CoordinatorServer:
    """The coordinator server: one per EC domain."""

    def __init__(self, context: AgletContext) -> None:
        self.context = context
        self.name = context.host_name
        context.host.attach_service("coordinator-server", self)
        self.agent = context.create(CoordinatorAgent, owner=self.name)

    def register_server(
        self, role: str, host: str, shard_id: Optional[int] = None
    ) -> None:
        """Register a marketplace / seller / buyer server with the CA.

        Buyer servers running in multi-server (fleet) mode pass their
        ``shard_id`` so the CA's domain registry records which partition of
        the consumer community each server owns.
        """
        payload = {"role": role, "host": host, "sender": self.name}
        if shard_id is not None:
            payload["shard_id"] = shard_id
        reply = self.agent.proxy.request(MessageKinds.SERVER_REGISTER, **payload)
        if not reply.ok:
            raise RegistrationError(reply.error)

    def register_replication(self, primary: str, replicas: List[str]) -> None:
        """Record that ``primary`` streams its UserDB mutations to ``replicas``.

        Every named host must already be a registered buyer server; the CA's
        topology answer then carries the ``replica_map`` alongside the shard
        map, so any domain participant can learn where a crashed server's
        consumers are recoverable from.
        """
        reply = self.agent.proxy.request(
            "platform.register-replication",
            sender=self.name,
            primary=primary,
            replicas=list(replicas),
        )
        if not reply.ok:
            raise RegistrationError(reply.error)

    def promote_shard(
        self, dead: str, promoted: str, shards: List[int]
    ) -> None:
        """Record a promotion failover: ``promoted`` takes over ``dead``'s shards.

        The CA updates its shard map in place (the promoted host now answers
        for the listed shards) and retires the dead primary's replication
        entry — the domain registry keeps telling the truth about where each
        partition of the consumer community is served from.
        """
        reply = self.agent.proxy.request(
            "platform.promote-shard",
            sender=self.name,
            dead=dead,
            promoted=promoted,
            shards=list(shards),
        )
        if not reply.ok:
            raise RegistrationError(reply.error)

    def sync_shard_map(self, epoch: int, assignments: Dict[int, str]) -> None:
        """Mirror the fleet's versioned shard map into the CA registry.

        Called by the fleet after every *elastic* epoch bump (handback,
        split, scale-in transfer) with the complete shard → owner
        assignment; promotion failovers keep their dedicated
        :meth:`promote_shard` message.  Stale epochs are ignored by the CA,
        so replays cannot regress the registry.
        """
        reply = self.agent.proxy.request(
            "platform.shard-map",
            sender=self.name,
            epoch=epoch,
            assignments={int(shard): host for shard, host in assignments.items()},
        )
        if not reply.ok:
            raise RegistrationError(reply.error)

    def topology(self) -> Dict[str, object]:
        """The CA's view of the EC domain."""
        reply = self.agent.proxy.request("platform.topology", sender=self.name)
        return dict(reply.payload)
