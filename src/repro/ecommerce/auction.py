"""Auction service offered by marketplaces.

The marketplace "provide[s] kinds of trading services such as: information
query, negotiations, and auctions" (§3.2).  The implementation is an English
(ascending) auction run to completion during the mobile buyer agent's visit:
the MBA bids on behalf of the consumer up to the consumer's maximum price
against a field of synthetic competing bidders drawn deterministically from
the marketplace's seeded RNG.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import AuctionError, HandshakeError
from repro.adversarial.handshake import HandshakeBroker, HandshakeTranscript
from repro.core.items import Item

__all__ = ["Bid", "Auction", "AuctionResult", "AuctionHouse"]

_auction_ids = itertools.count(1)


@dataclass(frozen=True)
class Bid:
    """One bid in an auction."""

    bidder: str
    amount: float
    round_number: int

    def __post_init__(self) -> None:
        if self.amount <= 0:
            raise AuctionError(f"bid amount must be positive, got {self.amount}")


@dataclass(frozen=True)
class AuctionResult:
    """Outcome of a completed auction."""

    auction_id: str
    item_id: str
    winner: Optional[str]
    winning_bid: float
    rounds: int
    bids: int
    reserve_met: bool


class Auction:
    """A single English auction for one item."""

    def __init__(
        self,
        item: Item,
        reserve_price: float,
        starting_price: Optional[float] = None,
        increment: Optional[float] = None,
    ) -> None:
        if reserve_price < 0:
            raise AuctionError("reserve price cannot be negative")
        self.auction_id = f"auction-{next(_auction_ids)}"
        self.item = item
        self.reserve_price = reserve_price
        self.starting_price = (
            starting_price if starting_price is not None else max(1.0, item.price * 0.5)
        )
        self.increment = increment if increment is not None else max(1.0, item.price * 0.05)
        self.bids: List[Bid] = []
        self.closed = False
        self.current_round = 0

    @property
    def highest_bid(self) -> Optional[Bid]:
        return self.bids[-1] if self.bids else None

    @property
    def current_price(self) -> float:
        highest = self.highest_bid
        return highest.amount if highest else self.starting_price

    def place_bid(self, bidder: str, amount: float) -> Bid:
        """Place a bid; it must beat the current price by at least the increment."""
        if self.closed:
            raise AuctionError(f"auction {self.auction_id!r} is closed")
        minimum = (
            self.starting_price
            if not self.bids
            else self.current_price + self.increment
        )
        if amount < minimum:
            raise AuctionError(
                f"bid of {amount:.2f} is below the minimum of {minimum:.2f} "
                f"for auction {self.auction_id!r}"
            )
        bid = Bid(bidder=bidder, amount=amount, round_number=self.current_round)
        self.bids.append(bid)
        return bid

    def close(self) -> AuctionResult:
        """Close the auction and determine the winner (if the reserve was met)."""
        if self.closed:
            raise AuctionError(f"auction {self.auction_id!r} is already closed")
        self.closed = True
        highest = self.highest_bid
        reserve_met = highest is not None and highest.amount >= self.reserve_price
        return AuctionResult(
            auction_id=self.auction_id,
            item_id=self.item.item_id,
            winner=highest.bidder if (highest and reserve_met) else None,
            winning_bid=highest.amount if highest else 0.0,
            rounds=self.current_round,
            bids=len(self.bids),
            reserve_met=reserve_met,
        )


class AuctionHouse:
    """Runs auctions for a marketplace, with synthetic competing bidders.

    With a :class:`~repro.adversarial.handshake.HandshakeBroker` attached
    (``PlatformConfig.handshake_trades``) every auction entry must present
    a finalized handshake transcript, which the house redeems — one
    transcript admits exactly one auction run, so a replayed offer is
    refused before any bidding happens.
    """

    def __init__(
        self,
        marketplace: str,
        seed: int = 0,
        competitor_count: int = 3,
        handshake: Optional[HandshakeBroker] = None,
    ) -> None:
        if competitor_count < 0:
            raise AuctionError("competitor count cannot be negative")
        self.marketplace = marketplace
        self._rng = random.Random(seed)
        self.competitor_count = competitor_count
        self.handshake = handshake
        #: auction_id → handshake_id of the redeemed transcript (only
        #: populated when a broker is attached, so the unsecured platform
        #: is byte-identical).
        self.handshakes: Dict[str, str] = {}
        self.completed: List[AuctionResult] = []

    def _competitor_limits(self, item: Item) -> List[float]:
        """Maximum prices the synthetic competitors are willing to pay.

        Each competitor's limit is drawn around the list price (70%-115%), so
        a consumer bidding meaningfully above list price usually wins, while a
        lowball maximum usually loses — the behaviour the auction workflow
        benchmark (Figure 4.3) measures.
        """
        return [
            item.price * self._rng.uniform(0.7, 1.15)
            for _ in range(self.competitor_count)
        ]

    def run_auction(
        self,
        item: Item,
        bidder: str,
        max_price: float,
        reserve_price: Optional[float] = None,
        max_rounds: int = 50,
        handshake: Optional[HandshakeTranscript] = None,
    ) -> AuctionResult:
        """Run one English auction to completion.

        Args:
            item: the merchandise being auctioned.
            bidder: the consumer's MBA identity.
            max_price: the most the consumer is willing to pay.
            reserve_price: seller's reserve; defaults to 70% of list price.
            max_rounds: safety bound on bidding rounds.
            handshake: the finalized transcript admitting the bidder;
                required (and redeemed) when the house enforces
                handshakes, ignored otherwise.
        """
        if self.handshake is not None:
            if handshake is None:
                raise HandshakeError(
                    f"marketplace {self.marketplace!r} requires a trade "
                    f"handshake to enter an auction"
                )
            self.handshake.redeem(handshake)
        if max_price <= 0:
            raise AuctionError("the consumer's maximum price must be positive")
        reserve = reserve_price if reserve_price is not None else item.price * 0.7
        auction = Auction(item, reserve_price=reserve)
        competitor_limits = self._competitor_limits(item)

        for round_number in range(1, max_rounds + 1):
            auction.current_round = round_number
            someone_bid = False

            # The consumer's agent bids first if it is not already winning.
            highest = auction.highest_bid
            consumer_winning = highest is not None and highest.bidder == bidder
            if not consumer_winning:
                needed = (
                    auction.starting_price
                    if not auction.bids
                    else auction.current_price + auction.increment
                )
                if needed <= max_price:
                    auction.place_bid(bidder, needed)
                    someone_bid = True

            # Each competitor bids if it can afford to and is not winning.
            for index, limit in enumerate(competitor_limits):
                name = f"{self.marketplace}-bidder-{index + 1}"
                highest = auction.highest_bid
                if highest is not None and highest.bidder == name:
                    continue
                needed = (
                    auction.starting_price
                    if not auction.bids
                    else auction.current_price + auction.increment
                )
                if needed <= limit:
                    auction.place_bid(name, needed)
                    someone_bid = True

            if not someone_bid:
                break

        result = auction.close()
        if handshake is not None and self.handshake is not None:
            self.handshakes[result.auction_id] = handshake.handshake_id
        self.completed.append(result)
        return result
