"""The agent-based e-commerce platform (§3 of the paper).

Four server roles make up the platform:

- :mod:`repro.ecommerce.coordinator` — the Coordinator Server and its
  Coordinator Agent (CA) managing the EC domain and bootstrapping buyer agent
  servers (Figure 4.1).
- :mod:`repro.ecommerce.marketplace` — marketplaces where buyer and seller
  mobile agents trade: merchandise query, negotiation and auctions.
- :mod:`repro.ecommerce.seller` — seller servers cataloguing merchandise and
  listing it on marketplaces through mobile seller agents.
- :mod:`repro.ecommerce.buyer_server` — the Buyer Agent Server, i.e. the
  consumer recommendation mechanism itself, hosting BSMA, HttpA, PA, the
  per-consumer BRAs and the MBAs they dispatch (Figure 3.2), backed by UserDB
  and BSMDB (:mod:`repro.ecommerce.databases`).

:mod:`repro.ecommerce.platform_builder` wires everything together on the
simulated platform and returns the :class:`ECommercePlatform` facade used by
the examples, tests and benchmarks.
"""

from repro.ecommerce.databases import UserDB, BSMDB, UserRecord
from repro.ecommerce.transactions import TransactionRecord, TransactionKind
from repro.ecommerce.catalog import MerchandiseCatalog, Listing
from repro.ecommerce.auction import AuctionHouse, Auction, AuctionResult, Bid
from repro.ecommerce.negotiation import NegotiationService, NegotiationOutcome
from repro.ecommerce.marketplace import MarketplaceServer
from repro.ecommerce.seller import SellerServer
from repro.ecommerce.coordinator import CoordinatorServer
from repro.ecommerce.buyer_server import (
    BuyerAgentServer,
    BuyerServerFleet,
    FleetQueryResult,
    ShardSplit,
)
from repro.ecommerce.elasticity import (
    AutoscalerDecision,
    AutoscalerPolicy,
    FleetAutoscaler,
)
from repro.ecommerce.replication import (
    ReplicaState,
    ReplicationLog,
    ReplicationLogEntry,
    ReplicationManager,
)
from repro.ecommerce.session import ConsumerSession, QueryResult
from repro.ecommerce.platform_builder import ECommercePlatform, PlatformConfig, build_platform

__all__ = [
    "UserDB",
    "BSMDB",
    "UserRecord",
    "TransactionRecord",
    "TransactionKind",
    "MerchandiseCatalog",
    "Listing",
    "AuctionHouse",
    "Auction",
    "AuctionResult",
    "Bid",
    "NegotiationService",
    "NegotiationOutcome",
    "MarketplaceServer",
    "SellerServer",
    "CoordinatorServer",
    "BuyerAgentServer",
    "BuyerServerFleet",
    "FleetQueryResult",
    "ShardSplit",
    "AutoscalerDecision",
    "AutoscalerPolicy",
    "FleetAutoscaler",
    "ReplicaState",
    "ReplicationLog",
    "ReplicationLogEntry",
    "ReplicationManager",
    "ConsumerSession",
    "QueryResult",
    "ECommercePlatform",
    "PlatformConfig",
    "build_platform",
]
