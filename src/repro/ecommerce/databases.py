"""UserDB and BSMDB — the two databases of the recommendation mechanism.

§3.3 of the paper:

- **UserDB** "records the consumer user profile and consumer transaction
  records."  It also holds the observational ratings store the collaborative
  part of the mechanism needs (§2.3: "systems ... use observational ratings").
- **BSMDB** "records the E-commerce platform's marketplaces, sell server and
  coordinator server information.  The on-line BRA information and the
  corresponding MBA that migrate to marketplace will also be recorded."

Both are in-memory stores attached to the buyer agent server host; agents
reach them through host services rather than holding direct references so that
agent state stays serialisable for deactivation and migration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.errors import LoginError, UnknownUserError
from repro.core.profile import Profile
from repro.core.ratings import Interaction, RatingsStore
from repro.ecommerce.transactions import TransactionRecord

__all__ = ["UserRecord", "UserDB", "BSMDB", "MutationListener"]

#: Signature of a UserDB mutation listener: called with the operation name and
#: a payload dict *after* the mutation has been applied locally.  This is the
#: capture point of the replication write-ahead log (see
#: :mod:`repro.ecommerce.replication`): every durable consumer-state change —
#: registration, profile replacement, observational rating, transaction,
#: login, unregistration — flows through exactly one notifying method here.
MutationListener = Callable[[str, Dict[str, Any]], None]


@dataclass
class UserRecord:
    """Registration record of one consumer."""

    user_id: str
    display_name: str = ""
    registered_at: float = 0.0
    logins: int = 0
    last_login_at: float = 0.0


class UserDB:
    """Consumer registry: profiles, transactions and observational ratings."""

    def __init__(self) -> None:
        self._users: Dict[str, UserRecord] = {}
        self._profiles: Dict[str, Profile] = {}
        self._transactions: Dict[str, List[TransactionRecord]] = {}
        self.ratings = RatingsStore()
        self._profiles_version = 0
        self._mutation_listeners: List[MutationListener] = []

    # -- mutation listeners ------------------------------------------------------

    def add_mutation_listener(self, listener: MutationListener) -> None:
        """Register a callable fired after every durable mutation.

        Listeners receive ``(op, payload)`` where ``op`` is one of
        ``"register"``, ``"unregister"``, ``"store-profile"``,
        ``"transaction"``, ``"interaction"``, ``"login"`` or
        ``"login-stats"``.  The replication
        subsystem uses this to append every local write to its write-ahead
        log; adding the same listener twice is a no-op.
        """
        if listener not in self._mutation_listeners:
            self._mutation_listeners.append(listener)

    def remove_mutation_listener(self, listener: MutationListener) -> None:
        """Unregister a previously added listener (missing ones are ignored)."""
        if listener in self._mutation_listeners:
            self._mutation_listeners.remove(listener)

    def _notify(self, op: str, **payload: Any) -> None:
        for listener in self._mutation_listeners:
            listener(op, payload)

    # -- registration -----------------------------------------------------------

    def register(self, user_id: str, display_name: str = "", timestamp: float = 0.0) -> UserRecord:
        """Register a consumer; registering twice is a login-protocol error."""
        if user_id in self._users:
            raise LoginError(f"user {user_id!r} is already registered")
        record = UserRecord(user_id=user_id, display_name=display_name or user_id,
                            registered_at=timestamp)
        self._users[user_id] = record
        self._profiles[user_id] = Profile(user_id)
        self._transactions[user_id] = []
        self._profiles_version += 1
        self._notify(
            "register",
            user_id=user_id,
            display_name=record.display_name,
            timestamp=timestamp,
        )
        return record

    def unregister(self, user_id: str) -> None:
        """Remove a consumer entirely (e.g. after migration to another server).

        Profile, transactions AND observational ratings go: a departed
        consumer must not linger as a collaborative neighbour or double-count
        if they are ever migrated back.  The profile set changes, so the
        membership version is bumped and any provider-backed neighbor index
        drops the consumer on its next sync.  Unknown consumers raise,
        mirroring the other accessors.
        """
        self._require(user_id)
        del self._users[user_id]
        del self._profiles[user_id]
        del self._transactions[user_id]
        self.ratings.remove_user(user_id)
        self._profiles_version += 1
        self._notify("unregister", user_id=user_id)

    def is_registered(self, user_id: str) -> bool:
        return user_id in self._users

    def user(self, user_id: str) -> UserRecord:
        self._require(user_id)
        return self._users[user_id]

    def record_login(self, user_id: str, timestamp: float) -> None:
        record = self.user(user_id)
        record.logins += 1
        record.last_login_at = timestamp
        self._notify("login", user_id=user_id, timestamp=timestamp)

    def restore_login_stats(
        self, user_id: str, logins: int, last_login_at: float
    ) -> None:
        """Overwrite a consumer's aggregate login history (count + last stamp).

        Used when a consumer's state is adopted wholesale from a replica
        (promotion failover): the aggregate is all a replica holds, and
        restoring it must notify listeners — it is durable state, and the
        adopting server's own replication stream has to carry it onward.
        """
        record = self.user(user_id)
        record.logins = int(logins)
        record.last_login_at = float(last_login_at)
        self._notify(
            "login-stats",
            user_id=user_id,
            logins=int(logins),
            last_login_at=float(last_login_at),
        )

    @property
    def user_ids(self) -> List[str]:
        return sorted(self._users)

    def __len__(self) -> int:
        return len(self._users)

    # -- profiles ----------------------------------------------------------------

    def profile(self, user_id: str) -> Profile:
        self._require(user_id)
        return self._profiles[user_id]

    def store_profile(self, profile: Profile) -> None:
        self._require(profile.user_id)
        self._profiles[profile.user_id] = profile
        self._profiles_version += 1
        self._notify("store-profile", profile=profile.to_dict())

    def profiles(self) -> List[Profile]:
        return [self._profiles[user_id] for user_id in sorted(self._profiles)]

    def profiles_version(self) -> int:
        """Counter bumped whenever the profile *set* changes (registration or
        wholesale replacement).  In-place learning updates do not bump it —
        those are reported per consumer by ProfileLearner hooks — so the
        neighbor index can use this stamp to skip full reconciles."""
        return self._profiles_version

    # -- transactions --------------------------------------------------------------

    def record_transaction(self, transaction: TransactionRecord) -> None:
        self._require(transaction.user_id)
        self._transactions[transaction.user_id].append(transaction)
        self._notify("transaction", transaction=transaction)

    def transactions_of(self, user_id: str) -> List[TransactionRecord]:
        self._require(user_id)
        return list(self._transactions[user_id])

    def all_transactions(self) -> List[TransactionRecord]:
        return [txn for records in self._transactions.values() for txn in records]

    # -- behaviour -------------------------------------------------------------------

    def record_interaction(self, interaction: Interaction) -> float:
        """Record an observational rating; returns the accumulated value."""
        self._require(interaction.user_id)
        value = self.ratings.add(interaction)
        self._notify("interaction", interaction=interaction)
        return value

    def _require(self, user_id: str) -> None:
        if user_id not in self._users:
            raise UnknownUserError(f"user {user_id!r} is not registered")


@dataclass
class MBARecord:
    """Bookkeeping for one mobile buyer agent currently away from home."""

    mba_id: str
    owner: str
    bra_id: str
    task: str
    itinerary: List[str] = field(default_factory=list)
    dispatched_at: float = 0.0
    returned_at: Optional[float] = None
    authenticated: bool = False


@dataclass
class OnlineBRARecord:
    """Bookkeeping for one online consumer's BRA."""

    bra_id: str
    user_id: str
    logged_in_at: float
    deactivated: bool = False


class BSMDB:
    """Buyer Server Management Database (platform topology + agent tracking)."""

    def __init__(self) -> None:
        self.coordinator: Optional[str] = None
        self._marketplaces: List[str] = []
        self._seller_servers: List[str] = []
        self._online_bras: Dict[str, OnlineBRARecord] = {}
        self._mbas: Dict[str, MBARecord] = {}

    # -- platform topology ---------------------------------------------------------

    def set_coordinator(self, host_name: str) -> None:
        self.coordinator = host_name

    def add_marketplace(self, host_name: str) -> None:
        if host_name not in self._marketplaces:
            self._marketplaces.append(host_name)

    def add_seller_server(self, host_name: str) -> None:
        if host_name not in self._seller_servers:
            self._seller_servers.append(host_name)

    @property
    def marketplaces(self) -> List[str]:
        return list(self._marketplaces)

    @property
    def seller_servers(self) -> List[str]:
        return list(self._seller_servers)

    # -- online BRAs -----------------------------------------------------------------

    def record_bra_online(self, bra_id: str, user_id: str, timestamp: float) -> None:
        self._online_bras[user_id] = OnlineBRARecord(bra_id, user_id, timestamp)

    def record_bra_deactivated(self, user_id: str, deactivated: bool) -> None:
        if user_id in self._online_bras:
            self._online_bras[user_id].deactivated = deactivated

    def record_bra_offline(self, user_id: str) -> None:
        self._online_bras.pop(user_id, None)

    def online_bra(self, user_id: str) -> Optional[OnlineBRARecord]:
        return self._online_bras.get(user_id)

    def online_user_ids(self) -> List[str]:
        return sorted(self._online_bras)

    # -- dispatched MBAs ----------------------------------------------------------------

    def record_mba_dispatched(
        self,
        mba_id: str,
        owner: str,
        bra_id: str,
        task: str,
        itinerary: Iterable[str],
        timestamp: float,
    ) -> MBARecord:
        record = MBARecord(
            mba_id=mba_id,
            owner=owner,
            bra_id=bra_id,
            task=task,
            itinerary=list(itinerary),
            dispatched_at=timestamp,
        )
        self._mbas[mba_id] = record
        return record

    def record_mba_returned(self, mba_id: str, timestamp: float, authenticated: bool) -> None:
        if mba_id in self._mbas:
            self._mbas[mba_id].returned_at = timestamp
            self._mbas[mba_id].authenticated = authenticated

    def mba(self, mba_id: str) -> Optional[MBARecord]:
        return self._mbas.get(mba_id)

    def outstanding_mbas(self) -> List[MBARecord]:
        """MBAs dispatched but not yet returned."""
        return [record for record in self._mbas.values() if record.returned_at is None]

    def mba_history(self) -> List[MBARecord]:
        return list(self._mbas.values())
