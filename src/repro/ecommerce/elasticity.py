"""The autoscaling control loop: routine elasticity for the buyer fleet.

ROADMAP item 3's end state: the failover machinery (replica bootstrap, WAL
catch-up, atomic shard-map flips) stops being disaster response and becomes
how the fleet breathes.  :class:`FleetAutoscaler` is a scheduled control
loop that watches the PR-7 observability surface — the per-server
``api.server.<name>.utilization`` / ``api.server.<name>.backlog_ms`` gauges
the concurrent driver publishes, plus the ``api.admission.rejected``
admission counter — and turns sustained pressure into topology changes:

- **scale out**: join a server (:meth:`ECommercePlatform.add_buyer_server`),
  then move load onto it — the hottest server hands a whole shard over when
  it owns several (:meth:`BuyerServerFleet.transfer_shard`), else its single
  hot shard is *split* live (:meth:`BuyerServerFleet.split_shard`) with the
  child owned by the newcomer;
- **scale in**: when the fleet has been idle below the low-water mark for a
  full cooldown, the most recently added server hands its shards back —
  split children return to their parent shard's current owner, everything
  else to the least-loaded survivor — and the server is decommissioned
  (:meth:`ECommercePlatform.remove_buyer_server`), LIFO so the founding
  topology is always the floor.

Every decision (including ``hold``) is recorded as an
``autoscaler.decision`` event and kept on the scaler for scenario reports.
The loop is deterministic: signals are read from the metrics registry, ties
break in fleet order, and nothing consults wall-clock time or randomness —
two same-seed runs scale identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.errors import ECommerceError
from repro.platform.clock import RecurringCallback

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.ecommerce.buyer_server import BuyerAgentServer
    from repro.ecommerce.platform_builder import ECommercePlatform

__all__ = ["AutoscalerPolicy", "AutoscalerDecision", "FleetAutoscaler"]


@dataclass
class AutoscalerPolicy:
    """Thresholds and limits of the control loop.

    Scale-out triggers when ANY pressure signal breaches its high-water
    mark: peak per-server utilization, peak per-server backlog, or new
    admission rejections since the previous tick.  Scale-in needs ALL
    signals quiet — peak utilization under the low-water mark, zero
    backlog breach, zero new rejections — for ``cooldown_ticks``
    consecutive ticks, and never shrinks below the founding fleet size
    (or ``min_servers`` when set higher).
    """

    scale_out_utilization: float = 0.7
    scale_in_utilization: float = 0.2
    scale_out_backlog_ms: float = 500.0
    scale_out_rejections: int = 25
    min_servers: Optional[int] = None
    max_servers: int = 16
    cooldown_ticks: int = 2

    def validate(self) -> None:
        if not 0.0 < self.scale_out_utilization <= 1.0:
            raise ECommerceError("scale_out_utilization must be in (0, 1]")
        if not 0.0 <= self.scale_in_utilization < self.scale_out_utilization:
            raise ECommerceError(
                "scale_in_utilization must be in [0, scale_out_utilization)"
            )
        if self.scale_out_backlog_ms <= 0:
            raise ECommerceError("scale_out_backlog_ms must be positive")
        if self.scale_out_rejections < 0:
            raise ECommerceError("scale_out_rejections cannot be negative")
        if self.max_servers <= 0:
            raise ECommerceError("max_servers must be positive")
        if self.cooldown_ticks < 0:
            raise ECommerceError("cooldown_ticks cannot be negative")


@dataclass
class AutoscalerDecision:
    """One control-loop tick: what was observed, what was done, and why."""

    at_ms: float
    action: str  # "scale-out" | "scale-in" | "hold"
    reason: str
    signals: Dict[str, float] = field(default_factory=dict)
    epoch: int = 0
    server: Optional[str] = None
    detail: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "at_ms": self.at_ms,
            "action": self.action,
            "reason": self.reason,
            "signals": dict(self.signals),
            "epoch": self.epoch,
        }
        if self.server is not None:
            payload["server"] = self.server
        if self.detail:
            payload["detail"] = dict(self.detail)
        return payload


class FleetAutoscaler:
    """Scheduled controller turning load signals into fleet topology changes."""

    def __init__(
        self,
        platform: "ECommercePlatform",
        policy: Optional[AutoscalerPolicy] = None,
    ) -> None:
        if platform.fleet is None:
            raise ECommerceError(
                "the autoscaler needs fleet mode (num_buyer_servers > 1)"
            )
        self.platform = platform
        self.fleet = platform.fleet
        self.policy = policy or AutoscalerPolicy()
        self.policy.validate()
        #: The founding fleet size is the default shrink floor: the
        #: autoscaler only ever removes capacity it (or a peer caller)
        #: added, never the topology the platform was built with.
        self.floor = max(
            self.policy.min_servers or 0,
            len(self.fleet.servers) - len(self.fleet.retired),
        )
        self.decisions: List[AutoscalerDecision] = []
        self._added: List["BuyerAgentServer"] = []
        self._rejected_last = self._rejected_now()
        self._quiet_ticks = 0
        self._task: Optional[RecurringCallback] = None

    # -- signals ---------------------------------------------------------------------

    def _rejected_now(self) -> int:
        return self.platform.metrics.counter("api.admission.rejected").value

    def active_servers(self) -> List["BuyerAgentServer"]:
        """Fleet servers that are serving: running and not retired."""
        return [
            server
            for server in self.fleet.servers
            if server.name not in self.fleet.retired
            and server.context.host.is_running
        ]

    def signals(self) -> Dict[str, float]:
        """One deterministic read of the pressure gauges.

        Utilization and backlog are the per-server gauges the concurrent
        driver publishes after each run window (absent gauges read 0 — an
        idle fleet is simply quiet); rejections are the *delta* of the
        global admission counter since the previous tick, so one historic
        overload can never pin the fleet scaled out forever.
        """
        metrics = self.platform.metrics
        utilizations = []
        backlogs = []
        for server in self.active_servers():
            utilizations.append(
                metrics.gauge(f"api.server.{server.name}.utilization").value
            )
            backlogs.append(
                metrics.gauge(f"api.server.{server.name}.backlog_ms").value
            )
        rejected_now = self._rejected_now()
        return {
            "max_utilization": max(utilizations, default=0.0),
            "mean_utilization": (
                sum(utilizations) / len(utilizations) if utilizations else 0.0
            ),
            "max_backlog_ms": max(backlogs, default=0.0),
            "new_rejections": float(rejected_now - self._rejected_last),
            "active_servers": float(len(utilizations)),
        }

    # -- the control loop --------------------------------------------------------------

    def tick(self) -> AutoscalerDecision:
        """Evaluate the signals once and act; returns the decision made."""
        signals = self.signals()
        self._rejected_last = self._rejected_now()
        active = len(self.active_servers())

        overloaded = (
            signals["max_utilization"] >= self.policy.scale_out_utilization
            or signals["max_backlog_ms"] >= self.policy.scale_out_backlog_ms
            or signals["new_rejections"] >= self.policy.scale_out_rejections
        )
        quiet = (
            signals["max_utilization"] <= self.policy.scale_in_utilization
            and signals["max_backlog_ms"] < self.policy.scale_out_backlog_ms
            and signals["new_rejections"] == 0
        )

        if overloaded and active < self.policy.max_servers:
            self._quiet_ticks = 0
            decision = self._scale_out(signals)
        elif overloaded:
            self._quiet_ticks = 0
            decision = self._decide(
                "hold", "overloaded but at max_servers", signals
            )
        elif quiet and self._added and active > self.floor:
            self._quiet_ticks += 1
            if self._quiet_ticks > self.policy.cooldown_ticks:
                self._quiet_ticks = 0
                decision = self._scale_in(signals)
            else:
                decision = self._decide(
                    "hold",
                    f"quiet {self._quiet_ticks}/{self.policy.cooldown_ticks + 1} "
                    "ticks before scale-in",
                    signals,
                )
        else:
            if not quiet:
                self._quiet_ticks = 0
            decision = self._decide("hold", "load within band", signals)
        return decision

    def _decide(
        self,
        action: str,
        reason: str,
        signals: Dict[str, float],
        server: Optional[str] = None,
        **detail,
    ) -> AutoscalerDecision:
        decision = AutoscalerDecision(
            at_ms=self.platform.now,
            action=action,
            reason=reason,
            signals=signals,
            epoch=self.fleet.shard_map.epoch,
            server=server,
            detail=detail,
        )
        self.decisions.append(decision)
        self.platform.event_log.record(
            self.platform.now,
            "autoscaler.decision",
            server or "fleet",
            "autoscaler",
            action=action,
            reason=reason,
            signals=dict(signals),
            epoch=decision.epoch,
        )
        self.platform.metrics.counter(f"autoscaler.{action}").increment()
        return decision

    def _hottest_server(self) -> "BuyerAgentServer":
        """The active server with the highest utilization (fleet order ties)."""
        metrics = self.platform.metrics
        servers = self.active_servers()
        return max(
            servers,
            key=lambda server: metrics.gauge(
                f"api.server.{server.name}.utilization"
            ).value,
        )

    def _scale_out(self, signals: Dict[str, float]) -> AutoscalerDecision:
        """Add a server and move load onto it: whole-shard handback or live split."""
        hottest = self._hottest_server()
        newcomer = self.platform.add_buyer_server()
        self._added.append(newcomer)
        owned = self.fleet.shards_of(hottest)
        if len(owned) > 1:
            # The hottest server serves several shards: hand its largest
            # (by assigned consumers) to the newcomer whole.
            sizes = self.fleet.shard_sizes()
            shard = max(owned, key=lambda s: (sizes[s], -s))
            moved = self.fleet.transfer_shard(shard, newcomer, kind="scale-out")
            return self._decide(
                "scale-out",
                "pressure high; transferred a whole shard to the new server",
                signals,
                server=newcomer.name,
                source=hottest.name,
                shard=shard,
                moved=moved,
            )
        # One shard: split it live, the newcomer owns the child.
        shard = owned[0]
        split = self.fleet.split_shard(shard, target=newcomer)
        moved = split.run()
        return self._decide(
            "scale-out",
            "pressure high; split the hot shard onto the new server",
            signals,
            server=newcomer.name,
            source=hottest.name,
            parent=shard,
            child=split.child,
            moved=moved,
        )

    def _scale_in(self, signals: Dict[str, float]) -> AutoscalerDecision:
        """Retire the most recently added server, handing its shards back."""
        leaving = self._added.pop()
        shard_moves: List[Dict[str, object]] = []
        for shard in list(self.fleet.shards_of(leaving)):
            target = self._handback_target(shard, leaving)
            moved = self.fleet.transfer_shard(shard, target, kind="scale-in")
            shard_moves.append(
                {"shard": shard, "target": target.name, "moved": moved}
            )
        self.platform.remove_buyer_server(leaving)
        return self._decide(
            "scale-in",
            "fleet quiet past cooldown; retired the newest server",
            signals,
            server=leaving.name,
            moves=shard_moves,
        )

    def _handback_target(
        self, shard: int, leaving: "BuyerAgentServer"
    ) -> "BuyerAgentServer":
        """Where a retiring server's shard should go.

        A split child returns to its parent shard's current owner (undoing
        the split's placement, though the child shard itself lives on —
        split lineage is routing history and never rewinds).  Anything else
        goes to the surviving active server with the fewest assigned
        consumers, fleet order breaking ties.
        """
        parent = self.fleet.shard_map.parent_of(shard)
        if parent is not None:
            owner = self.fleet.owner_of_shard(parent)
            if owner is not leaving and owner.context.host.is_running:
                return owner
        sizes = self.fleet.shard_sizes()
        candidates = [
            server for server in self.active_servers() if server is not leaving
        ]
        if not candidates:
            raise ECommerceError("no surviving server to hand the shard back to")
        return min(
            candidates,
            key=lambda server: sum(
                sizes[s] for s in self.fleet.shards_of(server)
            ),
        )

    # -- scheduling --------------------------------------------------------------------

    def start(self, interval_ms: float) -> RecurringCallback:
        """Arm the control loop on the platform scheduler."""
        if interval_ms <= 0:
            raise ECommerceError("autoscaler interval must be positive")
        if self._task is not None and not self._task.cancelled:
            raise ECommerceError("the autoscaler is already running")
        self._task = self.platform.scheduler.call_every(
            interval_ms, self.tick, label="autoscaler.tick"
        )
        return self._task

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None
