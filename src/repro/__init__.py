"""repro — reproduction of "An Agent-Based Consumer Recommendation Mechanism".

The package reimplements, in pure Python, the full agent-based e-commerce
platform and consumer recommendation mechanism described by Wang, Hwang and
Wang (2004):

- :mod:`repro.platform` — a deterministic discrete-event simulation substrate
  (clock, network, hosts) standing in for the physical testbed.
- :mod:`repro.agents` — an Aglet-style mobile-agent runtime (creation, cloning,
  dispatch, deactivation, messaging, authentication of returning agents).
- :mod:`repro.ecommerce` — the e-commerce platform: coordinator server,
  marketplaces (query, negotiation, auctions), seller servers and the buyer
  agent server that *is* the recommendation mechanism (BSMA, HttpA, PA, BRA,
  MBA, UserDB, BSMDB).
- :mod:`repro.core` — the recommendation algorithms: hierarchical consumer
  profiles, the Rocchio-style profile learning rule, the similarity algorithm,
  collaborative filtering, information filtering, popularity and hybrid
  recommenders, and evaluation metrics.
- :mod:`repro.workload` — synthetic consumer populations, product catalogues
  and behaviour traces used by the examples, tests and benchmarks.
- :mod:`repro.experiments` — harnesses that regenerate every figure of the
  paper's evaluation.

Quickstart (every client operation goes through the versioned gateway and
returns the uniform :class:`~repro.api.envelope.ApiResponse` envelope)::

    from repro import build_platform

    platform = build_platform(num_marketplaces=2, seed=7)
    gateway = platform.gateway()
    gateway.login("alice")
    response = gateway.query("alice", "laptop")          # Figure 4.2
    hit = response.result.hits[0]
    gateway.buy("alice", hit.item, marketplace=hit.marketplace)
    recommendations = gateway.recommendations("alice").result.recommendations

Scaling — batch serving and the neighbor index::

    # Similar-user search runs against a precomputed neighbor index
    # (repro.core.neighbors) that is invalidated incrementally as consumers
    # interact; it returns scores identical to the brute-force scan.
    service = platform.buyer_server.recommendations
    lists = service.recommend_many(["alice", "bob", "carol"], k=5)

    # Periodic community-wide precomputation (e.g. from a scenario loop):
    platform.buyer_server.refresh_recommendations(k=5)
    cached = service.cached_recommendations("alice")
"""

from repro.version import __version__
from repro.ecommerce.platform_builder import ECommercePlatform, build_platform
from repro.ecommerce.session import ConsumerSession
from repro.api.envelope import ApiError, ApiResponse, ApiStatus, Provenance
from repro.api.gateway import PlatformGateway
from repro.core.profile import Profile, Category, SubCategory, TermVector
from repro.core.recommender import (
    Recommendation,
    RecommendationEngine,
    Recommender,
)
from repro.core.similarity import profile_similarity, SimilarityConfig
from repro.core.neighbors import ProfileNeighborIndex

__all__ = [
    "__version__",
    "ECommercePlatform",
    "build_platform",
    "ConsumerSession",
    "PlatformGateway",
    "ApiResponse",
    "ApiStatus",
    "ApiError",
    "Provenance",
    "Profile",
    "Category",
    "SubCategory",
    "TermVector",
    "Recommendation",
    "RecommendationEngine",
    "Recommender",
    "profile_similarity",
    "SimilarityConfig",
    "ProfileNeighborIndex",
]
