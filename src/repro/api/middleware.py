"""The gateway's composable middleware chain.

Every request the :class:`~repro.api.gateway.PlatformGateway` executes flows
through an ordered chain of middlewares before reaching the dispatch that
talks to the platform.  Each middleware sees the mutable per-request
:class:`ApiCall` context and the next handler, and returns an
:class:`~repro.api.envelope.ApiResponse` — the same shape whether it came
from the dispatch, a retry, or the middleware short-circuiting.

**Canonical order** (outermost first, the order
:func:`~repro.api.gateway.PlatformGateway` installs them):

1. :class:`MetricsMiddleware` — counts every request and status (including
   rejections) and records per-operation simulated latency.  Outermost so
   nothing escapes accounting.
2. :class:`AdmissionControlMiddleware` — token-bucket load shedding on the
   simulated clock.  A shed request costs nothing downstream and returns a
   ``rejected`` envelope; it sits outside the deadline so rejections do not
   consume a latency budget that was never spent.
3. :class:`DeadlineMiddleware` — charges the request's simulated-time budget
   against the platform clock.  Wraps the retries, so backoff and re-routing
   spend the same budget the original attempt did.
4. :class:`RetryMiddleware` — bounded retry with exponential backoff
   (charged to the simulated clock) for *retryable* errors only.  Between
   attempts it asks the gateway to re-route around a crashed primary via
   the PR-4 promotion path, so a mid-traffic crash degrades instead of
   erroring.  Exhaustion returns the last ``unavailable`` envelope — the
   chain never raises.

All middlewares are stateless per request except the admission bucket,
whose token count is deliberately shared across requests (that is the
load-shedding).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, TYPE_CHECKING

from repro.api.envelope import ApiError, ApiResponse, ApiStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.gateway import PlatformGateway

__all__ = [
    "ApiCall",
    "Middleware",
    "MetricsMiddleware",
    "AdmissionControlMiddleware",
    "DeadlineMiddleware",
    "RetryMiddleware",
    "TokenBucket",
    "build_chain",
]

Handler = Callable[["ApiCall"], ApiResponse]


@dataclass
class ApiCall:
    """Mutable per-request context threaded through the middleware chain."""

    gateway: "PlatformGateway"
    request: Any
    operation: str
    request_id: int
    started_at_ms: float = 0.0
    #: Absolute simulated deadline (set by DeadlineMiddleware when a budget
    #: applies); retries consult it before spending backoff time.
    deadline_at_ms: Optional[float] = None
    attempts: int = 0
    failed_over: bool = False


class Middleware:
    """Base middleware: pass-through.  Subclasses override :meth:`handle`."""

    name = "middleware"

    def handle(self, call: ApiCall, next_handler: Handler) -> ApiResponse:
        return next_handler(call)


def build_chain(middlewares: List[Middleware], terminal: Handler) -> Handler:
    """Compose ``middlewares`` (outermost first) around ``terminal``."""
    handler = terminal
    for middleware in reversed(middlewares):
        def handler(call, _mw=middleware, _next=handler):
            return _mw.handle(call, _next)
    return handler


class MetricsMiddleware(Middleware):
    """Counts requests/statuses and records per-operation simulated latency."""

    name = "metrics"

    def __init__(self, metrics, clock) -> None:
        self._metrics = metrics
        self._clock = clock

    def handle(self, call: ApiCall, next_handler: Handler) -> ApiResponse:
        metrics = self._metrics
        metrics.counter("api.requests").increment()
        metrics.counter(f"api.requests.{call.operation}").increment()
        started = self._clock.now
        response = next_handler(call)
        elapsed = self._clock.now - started
        metrics.counter(f"api.status.{response.status}").increment()
        metrics.timer("api.latency_ms").record(elapsed)
        metrics.timer(f"api.latency_ms.{call.operation}").record(elapsed)
        return response


@dataclass
class TokenBucket:
    """A token bucket refilled by simulated time.

    ``capacity`` bounds the burst; ``refill_per_ms`` tokens accrue per
    simulated millisecond.  Deterministic by construction — the only clock
    it reads is the platform's simulated one.
    """

    capacity: float
    refill_per_ms: float
    tokens: float = field(default=0.0)
    last_refill_ms: float = 0.0

    def __post_init__(self) -> None:
        self.tokens = float(self.capacity)

    def try_acquire(self, now_ms: float) -> bool:
        if now_ms > self.last_refill_ms:
            self.tokens = min(
                float(self.capacity),
                self.tokens + (now_ms - self.last_refill_ms) * self.refill_per_ms,
            )
        self.last_refill_ms = max(self.last_refill_ms, now_ms)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AdmissionControlMiddleware(Middleware):
    """Token-bucket load shedding: over-capacity requests get ``rejected``.

    With no bucket configured (``PlatformConfig.api_admission_capacity=0``)
    this is a pass-through, which keeps the default platform byte-identical
    to the pre-gateway behaviour.
    """

    name = "admission"

    def __init__(self, bucket: Optional[TokenBucket], metrics, clock) -> None:
        self.bucket = bucket
        self._metrics = metrics
        self._clock = clock

    def handle(self, call: ApiCall, next_handler: Handler) -> ApiResponse:
        if self.bucket is None or self.bucket.try_acquire(self._clock.now):
            return next_handler(call)
        self._metrics.counter("api.admission.rejected").increment()
        return ApiResponse(
            status=ApiStatus.REJECTED,
            error=ApiError(
                code="admission-rejected",
                kind="AdmissionControl",
                message=(
                    f"request shed by admission control "
                    f"(bucket capacity {self.bucket.capacity:g} exhausted)"
                ),
                retryable=True,
            ),
        )


class DeadlineMiddleware(Middleware):
    """Enforces the request's simulated-time budget.

    The budget is ``request.deadline_ms`` when set, else the platform-wide
    default (``PlatformConfig.api_deadline_ms``); ``None`` means unbounded.
    Work is never interrupted mid-flight — the simulation is synchronous —
    but a response that comes back after the budget has elapsed on the
    simulated clock is replaced by an ``unavailable`` envelope with code
    ``deadline-exceeded``, keeping the provenance of the work that was done
    (the caller timed out; the platform still spent the time).
    """

    name = "deadline"

    def __init__(self, default_deadline_ms: Optional[float], metrics, clock) -> None:
        self.default_deadline_ms = default_deadline_ms
        self._metrics = metrics
        self._clock = clock

    def handle(self, call: ApiCall, next_handler: Handler) -> ApiResponse:
        deadline = getattr(call.request, "deadline_ms", None)
        if deadline is None:
            deadline = self.default_deadline_ms
        if deadline is None:
            return next_handler(call)
        started = self._clock.now
        call.deadline_at_ms = started + deadline
        response = next_handler(call)
        elapsed = self._clock.now - started
        if elapsed <= deadline:
            return response
        self._metrics.counter("api.deadline_exceeded").increment()
        return ApiResponse(
            status=ApiStatus.UNAVAILABLE,
            error=ApiError(
                code="deadline-exceeded",
                kind="Deadline",
                message=(
                    f"operation took {elapsed:.3f} ms of simulated time, "
                    f"over the {deadline:.3f} ms deadline"
                ),
                retryable=False,
            ),
            provenance=response.provenance,
        )


#: Exception *kinds* raised strictly before any work is dispatched to a
#: marketplace or buyer server: the gateway's own liveness check
#: (:class:`~repro.api.gateway.RoutingUnavailableError`) and the fleet's
#: consumer-routing failure.  Keyed on the kind — not the error code — so a
#: mid-flight ``HostUnreachableError`` (same code, different origin) can
#: never be mistaken for a pre-dispatch failure and replay a write.
PRE_DISPATCH_ERROR_KINDS = ("RoutingUnavailableError", "FleetUnavailableError")


class RetryMiddleware(Middleware):
    """Bounded retry with exponential backoff and crash re-routing.

    Retries only *retryable* errors (see the taxonomy in
    :mod:`repro.api.envelope`): infrastructure failures where another
    attempt can land somewhere healthier.  Operations that write
    (``retry_safe=False`` on the request type — buy, auction, negotiate,
    rate) are additionally retried **only** on pre-dispatch routing failures
    (:data:`PRE_DISPATCH_ERROR_KINDS`): a mid-flight loss — say the reply
    leg dropped after the marketplace applied the trade — must surface as
    ``unavailable`` for the client to reconcile, never be silently
    re-executed into a double purchase.  Before each retry it

    1. charges the backoff to the simulated clock (exponential, starting at
       ``backoff_ms``),
    2. asks the gateway to heal routing
       (:meth:`~repro.api.gateway.PlatformGateway._heal_routing`): when the
       consumer's primary is crashed and a live replica exists, the PR-4
       promotion failover moves the shard so the next attempt lands on the
       promoted server.

    A success after a failover is reported ``degraded`` (the promoted
    replica may be missing the dead primary's unshipped tail).  Exhaustion
    returns the final error envelope — by construction ``unavailable``,
    never a raised exception.  Retries respect the deadline: a backoff that
    would overrun ``deadline_at_ms`` ends the attempts instead.
    """

    name = "retry"

    def __init__(self, max_retries: int, backoff_ms: float, metrics, clock) -> None:
        self.max_retries = max_retries
        self.backoff_ms = backoff_ms
        self._metrics = metrics
        self._clock = clock

    def _may_retry(self, call: ApiCall, response: ApiResponse) -> bool:
        if response.error is None or not response.error.retryable:
            return False
        if getattr(type(call.request), "retry_safe", False):
            return True
        return response.error.kind in PRE_DISPATCH_ERROR_KINDS

    def handle(self, call: ApiCall, next_handler: Handler) -> ApiResponse:
        response = next_handler(call)
        backoff = self.backoff_ms
        while self._may_retry(call, response) and call.attempts < self.max_retries:
            if (
                call.deadline_at_ms is not None
                and self._clock.now + backoff > call.deadline_at_ms
            ):
                break  # no budget left to wait out the backoff
            self._clock.advance_by(backoff)
            backoff *= 2.0
            if call.gateway._heal_routing(getattr(call.request, "user_id", None)):
                call.failed_over = True
            call.attempts += 1
            self._metrics.counter("api.retries").increment()
            response = next_handler(call)
        if response.ok and call.failed_over:
            response.status = ApiStatus.DEGRADED
        return response
