"""The gateway's composable middleware chain.

Every request the :class:`~repro.api.gateway.PlatformGateway` executes flows
through an ordered chain of middlewares before reaching the dispatch that
talks to the platform.  Each middleware sees the mutable per-request
:class:`ApiCall` context and the next handler, and returns an
:class:`~repro.api.envelope.ApiResponse` — the same shape whether it came
from the dispatch, a retry, or the middleware short-circuiting.

**Canonical order** (outermost first, the order
:func:`~repro.api.gateway.PlatformGateway` installs them):

1. :class:`MetricsMiddleware` — counts every request and status (including
   rejections) and records per-operation simulated latency for *dispatched*
   work.  Outermost so nothing escapes accounting; admission-shed requests
   are counted but contribute no latency sample (a flood of 0 ms rejection
   samples would drag ``api.latency_ms`` percentiles toward zero under
   burst, hiding the very overload that caused the shedding).
2. :class:`AdmissionControlMiddleware` — token-bucket load shedding on the
   simulated clock.  A shed request costs nothing downstream and returns a
   ``rejected`` envelope; it sits outside the deadline so rejections do not
   consume a latency budget that was never spent.  Operations may be
   grouped into *admission classes* (``PlatformConfig.api_admission_classes``)
   with per-class weighted buckets, so a burst of cheap reads sheds in the
   read class while writes keep their own tokens.
3. :class:`DeadlineMiddleware` — charges the request's simulated-time budget
   against the call's clock.  Wraps the retries, so backoff and re-routing
   spend the same budget the original attempt did.
4. :class:`RetryMiddleware` — bounded retry with exponential backoff
   (charged to the call's clock) for *retryable* errors only.  Between
   attempts it asks the gateway to re-route around a crashed primary via
   the PR-4 promotion path, so a mid-traffic crash degrades instead of
   erroring.  Exhaustion returns the last ``unavailable`` envelope — the
   chain never raises.
5. :class:`QueueingMiddleware` — per-server FIFO queueing, active only on
   the concurrent submit path (``call.queues`` set).  Innermost — inside
   the retries — so every attempt waits its turn at the (possibly new,
   post-failover) server it targets.  A no-op for sequential ``execute``
   calls, which keeps them byte-identical to pre-concurrency behaviour.
   When the deadline middleware has stamped ``call.deadline_at_ms`` and the
   target server will not free up before it, the attempt is *dropped in
   queue* (``api.queue_dropped``): the caller gets the same
   ``unavailable``/``deadline-exceeded`` envelope it would have received
   after dispatch, but the server is never occupied and no transport time
   is spent on doomed work.

**Per-call clock accounting.**  Every middleware reads time through
``call.clock``, never a captured platform clock.  On the sequential
``execute`` path the call clock *is* the shared platform clock, so backoff
and deadlines behave exactly as before.  On the concurrent ``submit`` path
the call clock is a :class:`~repro.platform.clock.SessionClock`: one
session's retry backoff or queue wait spends that session's own virtual
time instead of advancing the global clock under every other open session.

All middlewares are stateless per request except the admission bucket,
whose token count is deliberately shared across requests (that is the
load-shedding).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from repro.errors import ReproError
from repro.api.envelope import ApiError, ApiResponse, ApiStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.gateway import PlatformGateway

__all__ = [
    "ApiCall",
    "Middleware",
    "MetricsMiddleware",
    "AdmissionControlMiddleware",
    "DeadlineMiddleware",
    "RetryMiddleware",
    "QueueingMiddleware",
    "TokenBucket",
    "build_chain",
]

Handler = Callable[["ApiCall"], ApiResponse]


@dataclass
class ApiCall:
    """Mutable per-request context threaded through the middleware chain."""

    gateway: "PlatformGateway"
    request: Any
    operation: str
    request_id: int
    started_at_ms: float = 0.0
    #: The clock this call charges waits/backoff to and measures elapsed
    #: time on: the shared platform clock for sequential ``execute`` calls,
    #: a per-session :class:`~repro.platform.clock.SessionClock` on the
    #: concurrent ``submit`` path.
    clock: Any = None
    #: Per-server queue accounting (``ServerQueues``) on the submit path;
    #: ``None`` sequentially, which disables :class:`QueueingMiddleware`.
    queues: Any = None
    #: Simulated milliseconds this call spent waiting in server queues.
    queued_ms: float = 0.0
    #: Absolute simulated deadline (set by DeadlineMiddleware when a budget
    #: applies); retries consult it before spending backoff time.
    deadline_at_ms: Optional[float] = None
    attempts: int = 0
    failed_over: bool = False


class Middleware:
    """Base middleware: pass-through.  Subclasses override :meth:`handle`."""

    name = "middleware"

    def handle(self, call: ApiCall, next_handler: Handler) -> ApiResponse:
        return next_handler(call)


def build_chain(middlewares: List[Middleware], terminal: Handler) -> Handler:
    """Compose ``middlewares`` (outermost first) around ``terminal``."""
    handler = terminal
    for middleware in reversed(middlewares):
        def handler(call, _mw=middleware, _next=handler):
            return _mw.handle(call, _next)
    return handler


class MetricsMiddleware(Middleware):
    """Counts requests/statuses and records per-operation simulated latency.

    Latency samples cover *dispatched* work only: an admission-rejected
    request is counted (``api.status.rejected`` plus the admission
    middleware's own ``api.admission.rejected``) but records no
    ``api.latency_ms`` sample — rejections cost ~0 simulated ms, so under a
    burst that sheds half the traffic they would drag the latency
    percentiles toward zero exactly when the dispatched half is slowest.
    """

    name = "metrics"

    def __init__(self, metrics, clock) -> None:
        self._metrics = metrics
        self._clock = clock

    def handle(self, call: ApiCall, next_handler: Handler) -> ApiResponse:
        metrics = self._metrics
        clock = call.clock if call.clock is not None else self._clock
        metrics.counter("api.requests").increment()
        metrics.counter(f"api.requests.{call.operation}").increment()
        started = clock.now
        response = next_handler(call)
        elapsed = clock.now - started
        metrics.counter(f"api.status.{response.status}").increment()
        if response.status != ApiStatus.REJECTED:
            metrics.timer("api.latency_ms").record(elapsed)
            metrics.timer(f"api.latency_ms.{call.operation}").record(elapsed)
        return response


@dataclass
class TokenBucket:
    """A token bucket refilled by simulated time.

    ``capacity`` bounds the burst; ``refill_per_ms`` tokens accrue per
    simulated millisecond.  Deterministic by construction — the only clock
    it reads is the platform's simulated one.

    ``tokens`` defaults to a full bucket but an explicitly passed value is
    respected (e.g. a pre-drained bucket in a test or a warm handover).
    ``last_refill_ms`` anchors the refill; when omitted the bucket anchors
    itself at the timestamp of the *first* acquire — anchoring at 0.0 would
    grant a spurious full refill to the first request on any clock that
    started, or warmed up, past 0.
    """

    capacity: float
    refill_per_ms: float
    tokens: Optional[float] = None
    last_refill_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.tokens is None:
            self.tokens = float(self.capacity)
        else:
            self.tokens = min(float(self.tokens), float(self.capacity))

    def try_acquire(self, now_ms: float, cost: float = 1.0) -> bool:
        """Take ``cost`` tokens if available; ``cost`` weights admission
        classes (an expensive write may drain several tokens per request)."""
        if self.last_refill_ms is None:
            self.last_refill_ms = float(now_ms)
        if now_ms > self.last_refill_ms:
            self.tokens = min(
                float(self.capacity),
                self.tokens + (now_ms - self.last_refill_ms) * self.refill_per_ms,
            )
        self.last_refill_ms = max(self.last_refill_ms, now_ms)
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False


class AdmissionControlMiddleware(Middleware):
    """Token-bucket load shedding: over-capacity requests get ``rejected``.

    With no bucket configured (``PlatformConfig.api_admission_capacity=0``)
    this is a pass-through, which keeps the default platform byte-identical
    to the pre-gateway behaviour.

    **Admission classes** (``PlatformConfig.api_admission_classes``) give
    operation groups their own weighted buckets: a classed operation draws
    ``cost`` tokens from *its class's* bucket instead of the shared default
    one, so a burst of cheap reads exhausts the read class and sheds there
    while writes keep drawing from their own (typically deeper or
    faster-refilling) bucket — SEDA-style per-stage admission rather than
    one bucket that is blind to what it is shedding.  Operations not named
    by any class fall back to the default bucket; each classed rejection
    also increments ``api.admission.rejected.<class>``.
    """

    name = "admission"

    def __init__(
        self,
        bucket: Optional[TokenBucket],
        metrics,
        clock,
        class_buckets: Optional[Dict[str, TokenBucket]] = None,
        operation_classes: Optional[Dict[str, str]] = None,
        class_costs: Optional[Dict[str, float]] = None,
    ) -> None:
        self.bucket = bucket
        self.class_buckets = dict(class_buckets or {})
        self.operation_classes = dict(operation_classes or {})
        self.class_costs = dict(class_costs or {})
        self._metrics = metrics
        self._clock = clock

    def handle(self, call: ApiCall, next_handler: Handler) -> ApiResponse:
        clock = call.clock if call.clock is not None else self._clock
        admission_class = self.operation_classes.get(call.operation)
        if admission_class is not None:
            bucket: Optional[TokenBucket] = self.class_buckets[admission_class]
            cost = self.class_costs.get(admission_class, 1.0)
        else:
            bucket = self.bucket
            cost = 1.0
        if bucket is None or bucket.try_acquire(clock.now, cost=cost):
            return next_handler(call)
        self._metrics.counter("api.admission.rejected").increment()
        if admission_class is not None:
            self._metrics.counter(
                f"api.admission.rejected.{admission_class}"
            ).increment()
            message = (
                f"request shed by admission control (class "
                f"{admission_class!r} bucket capacity "
                f"{bucket.capacity:g} exhausted)"
            )
        else:
            message = (
                f"request shed by admission control "
                f"(bucket capacity {bucket.capacity:g} exhausted)"
            )
        return ApiResponse(
            status=ApiStatus.REJECTED,
            error=ApiError(
                code="admission-rejected",
                kind="AdmissionControl",
                message=message,
                retryable=True,
            ),
        )


class DeadlineMiddleware(Middleware):
    """Enforces the request's simulated-time budget.

    The budget is ``request.deadline_ms`` when set, else the platform-wide
    default (``PlatformConfig.api_deadline_ms``); ``None`` means unbounded.
    Work is never interrupted mid-flight — the simulation is synchronous —
    but a response that comes back after the budget has elapsed on the
    simulated clock is replaced by an ``unavailable`` envelope with code
    ``deadline-exceeded``, keeping the provenance of the work that was done
    (the caller timed out; the platform still spent the time).
    """

    name = "deadline"

    def __init__(self, default_deadline_ms: Optional[float], metrics, clock) -> None:
        self.default_deadline_ms = default_deadline_ms
        self._metrics = metrics
        self._clock = clock

    def handle(self, call: ApiCall, next_handler: Handler) -> ApiResponse:
        deadline = getattr(call.request, "deadline_ms", None)
        if deadline is None:
            deadline = self.default_deadline_ms
        if deadline is None:
            return next_handler(call)
        clock = call.clock if call.clock is not None else self._clock
        started = clock.now
        call.deadline_at_ms = started + deadline
        response = next_handler(call)
        elapsed = clock.now - started
        if elapsed <= deadline:
            return response
        self._metrics.counter("api.deadline_exceeded").increment()
        return ApiResponse(
            status=ApiStatus.UNAVAILABLE,
            error=ApiError(
                code="deadline-exceeded",
                kind="Deadline",
                message=(
                    f"operation took {elapsed:.3f} ms of simulated time, "
                    f"over the {deadline:.3f} ms deadline"
                ),
                retryable=False,
            ),
            provenance=response.provenance,
        )


#: Exception *kinds* raised strictly before any work is dispatched to a
#: marketplace or buyer server: the gateway's own liveness check
#: (:class:`~repro.api.gateway.RoutingUnavailableError`) and the fleet's
#: consumer-routing failure.  Keyed on the kind — not the error code — so a
#: mid-flight ``HostUnreachableError`` (same code, different origin) can
#: never be mistaken for a pre-dispatch failure and replay a write.
PRE_DISPATCH_ERROR_KINDS = ("RoutingUnavailableError", "FleetUnavailableError")


class RetryMiddleware(Middleware):
    """Bounded retry with exponential backoff and crash re-routing.

    Retries only *retryable* errors (see the taxonomy in
    :mod:`repro.api.envelope`): infrastructure failures where another
    attempt can land somewhere healthier.  Operations that write
    (``retry_safe=False`` on the request type — buy, auction, negotiate,
    rate) are additionally retried **only** on pre-dispatch routing failures
    (:data:`PRE_DISPATCH_ERROR_KINDS`): a mid-flight loss — say the reply
    leg dropped after the marketplace applied the trade — must surface as
    ``unavailable`` for the client to reconcile, never be silently
    re-executed into a double purchase.  Before each retry it

    1. charges the backoff to the *call's* clock (exponential, starting at
       ``backoff_ms``) — the shared platform clock sequentially, the
       session's own virtual clock on the submit path, so one session's
       backoff never stalls every other open session,
    2. asks the gateway to heal routing
       (:meth:`~repro.api.gateway.PlatformGateway._heal_routing`): when the
       consumer's primary is crashed and a live replica exists, the PR-4
       promotion failover moves the shard so the next attempt lands on the
       promoted server.

    A success after a failover is reported ``degraded`` (the promoted
    replica may be missing the dead primary's unshipped tail).  Exhaustion
    returns the final error envelope — by construction ``unavailable``,
    never a raised exception.  Retries respect the deadline: a backoff that
    would overrun ``deadline_at_ms`` ends the attempts instead.
    """

    name = "retry"

    def __init__(self, max_retries: int, backoff_ms: float, metrics, clock) -> None:
        self.max_retries = max_retries
        self.backoff_ms = backoff_ms
        self._metrics = metrics
        self._clock = clock

    def _may_retry(self, call: ApiCall, response: ApiResponse) -> bool:
        if response.error is None or not response.error.retryable:
            return False
        if getattr(type(call.request), "retry_safe", False):
            return True
        return response.error.kind in PRE_DISPATCH_ERROR_KINDS

    def handle(self, call: ApiCall, next_handler: Handler) -> ApiResponse:
        clock = call.clock if call.clock is not None else self._clock
        response = next_handler(call)
        backoff = self.backoff_ms
        while self._may_retry(call, response) and call.attempts < self.max_retries:
            if (
                call.deadline_at_ms is not None
                and clock.now + backoff > call.deadline_at_ms
            ):
                break  # no budget left to wait out the backoff
            clock.advance_by(backoff)
            backoff *= 2.0
            if call.gateway._heal_routing(getattr(call.request, "user_id", None)):
                call.failed_over = True
            call.attempts += 1
            self._metrics.counter("api.retries").increment()
            response = next_handler(call)
        if response.ok and call.failed_over:
            # Never mutate the envelope the dispatch returned: result objects
            # can be cached or logged downstream, and an aliased envelope
            # flipping to DEGRADED after the fact would rewrite history for
            # whoever held a reference.  Return a replaced copy instead.
            response = replace(response, status=ApiStatus.DEGRADED)
        return response


class QueueingMiddleware(Middleware):
    """Per-server FIFO queueing for overlapping sessions.

    Active only on the concurrent submit path (``call.queues`` holds the
    scheduler's :class:`~repro.api.concurrency.ServerQueues`); sequential
    ``execute`` calls pass ``queues=None`` and flow straight through, which
    keeps the one-at-a-time path byte-identical to pre-concurrency output.

    Innermost in the chain — inside the retries — so each attempt queues at
    the server it actually targets *after* any failover re-routing.  The
    wait is charged to the session's own clock (the service time itself is
    charged by the transport, to everyone); it is recorded in
    ``api.queue_wait_ms`` and on ``call.queued_ms`` but deliberately not in
    the envelope, whose shape is part of the byte-stability contract.

    **Deadline-aware queue drops.**  A request whose target server stays
    busy past ``call.deadline_at_ms`` (stamped by the outer
    :class:`DeadlineMiddleware`) cannot possibly answer in time: waiting it
    out and dispatching anyway would occupy the server — lengthening every
    later session's queue — to produce an envelope the deadline middleware
    then discards.  Such a request is shed *in queue* instead: it returns
    ``unavailable`` with code ``deadline-exceeded`` (kind ``QueueDeadline``
    to distinguish the drop site), increments ``api.queue_dropped`` and
    ``api.queue_dropped.<operation>``, spends only the session's own
    remaining budget on its clock, and never touches ``ServerQueues``
    occupancy or the ``api.queue_wait_ms`` dispatched-work timers.  With no
    deadline configured the branch is unreachable, keeping the default
    path byte-identical.
    """

    name = "queueing"

    def __init__(self, metrics) -> None:
        self._metrics = metrics

    def _target_server(self, call: ApiCall) -> Optional[str]:
        user_id = getattr(call.request, "user_id", None)
        if user_id is None:
            return None
        try:
            return call.gateway._platform.buyer_server_for(user_id).name
        except ReproError:
            # Routing failures surface from the dispatch with the proper
            # taxonomy; queueing just declines to guess a queue for them.
            return None

    def handle(self, call: ApiCall, next_handler: Handler) -> ApiResponse:
        if call.queues is None or call.clock is None:
            return next_handler(call)
        clock = call.clock
        server = self._target_server(call)
        if server is not None:
            free_at = call.queues.wait_for(server, clock.now)
            if call.deadline_at_ms is not None and free_at > call.deadline_at_ms:
                # Deadline-aware queue drop: the server will not be free
                # until after this call's budget is already spent, so
                # dispatching would burn service time on an answer the
                # caller has given up on.  Shed it here — the server is
                # never occupied, no transport time is spent, and the next
                # session in line starts sooner.  The session still waits
                # out its budget (that is the client-perceived latency of a
                # timeout), but the dispatched-work timers stay untouched.
                waited = call.deadline_at_ms - clock.now
                if waited > 0:
                    clock.advance_by(waited)
                    call.queued_ms += waited
                self._metrics.counter("api.queue_dropped").increment()
                self._metrics.counter(
                    f"api.queue_dropped.{call.operation}"
                ).increment()
                return ApiResponse(
                    status=ApiStatus.UNAVAILABLE,
                    error=ApiError(
                        code="deadline-exceeded",
                        kind="QueueDeadline",
                        message=(
                            f"queued behind {server} until "
                            f"{free_at:.3f} ms, past the deadline at "
                            f"{call.deadline_at_ms:.3f} ms; dropped "
                            f"before dispatch"
                        ),
                        retryable=False,
                    ),
                )
            waited = free_at - clock.now
            if waited > 0:
                clock.advance_by(waited)
                call.queued_ms += waited
                call.queues.record_wait(server, waited)
                self._metrics.timer("api.queue_wait_ms").record(waited)
                self._metrics.timer(
                    f"api.queue_wait_ms.{call.operation}"
                ).record(waited)
        started = clock.now
        response = next_handler(call)
        if server is not None:
            # Hold the server for the simulated time this attempt consumed:
            # the next session routed here queues behind it.
            call.queues.occupy(server, started, clock.now)
        return response
