"""The gateway's uniform response envelope and structured error taxonomy.

Every client operation — register, login, query, buy, negotiate,
recommendations, find-similar, admin stats — returns the same
:class:`ApiResponse` envelope regardless of which subsystem served it.  The
envelope carries:

- a **status** from a small closed taxonomy (:class:`ApiStatus`):
  ``ok`` (served in full), ``degraded`` (served, but part of the community
  was answered from a stale replica, skipped, or reached only after a
  failover), ``failed`` (a client/semantic error — unknown user, inactive
  session, bad request), ``unavailable`` (the platform could not serve the
  request at all: fleet down, retries exhausted, deadline exceeded) and
  ``rejected`` (shed by admission control before any work happened);
- the typed **result** payload (one of the dataclasses in
  :mod:`repro.api.requests`) on ``ok``/``degraded``, else ``None``;
- a structured :class:`ApiError` mapped from the :mod:`repro.errors`
  hierarchy (:func:`classify_error`), never a raw traceback;
- **simulated-latency timing** (``started_at_ms``/``finished_at_ms`` on the
  platform clock — the gateway itself charges nothing on the happy path, so
  gateway results are byte-identical to direct calls on the same seed);
- **provenance** (:class:`Provenance`): which server answered, per-shard
  fan-out latencies, stale/unreachable shard reporting folded in from
  :class:`~repro.ecommerce.buyer_server.FleetQueryResult`, read-repair and
  failover/retry accounting.

The envelope is deliberately plain-dataclass: ``repr`` of a response is
deterministic for a given seed and request sequence, which is what the
byte-stability tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.errors import (
    AgentError,
    AuctionError,
    AuthenticationError,
    CatalogError,
    ColdStartError,
    DoubleFinalizeError,
    ECommerceError,
    FleetUnavailableError,
    ForgedNonceError,
    HandshakeError,
    HostUnreachableError,
    LinkDownError,
    LoginError,
    MarketplaceError,
    MessageDeliveryError,
    MessageTimeoutError,
    NegotiationError,
    ReplayedOfferError,
    StaleCredentialError,
    NetworkError,
    PlatformError,
    RecommendationError,
    RegistrationError,
    ReplicationError,
    ReproError,
    SessionError,
    TransactionError,
    TransferDroppedError,
    UnknownUserError,
)

__all__ = [
    "API_VERSION",
    "SUPPORTED_VERSIONS",
    "AUTH_REJECTION_CODES",
    "KNOWN_ERROR_CODES",
    "ApiStatus",
    "ApiError",
    "Provenance",
    "ApiResponse",
    "classify_error",
]

#: The current (and only) gateway protocol version.  Requests default to it;
#: the gateway refuses versions outside :data:`SUPPORTED_VERSIONS` with a
#: ``failed`` envelope rather than guessing at unknown semantics.
API_VERSION = "v1"
SUPPORTED_VERSIONS = (API_VERSION,)


class ApiStatus:
    """The closed status taxonomy every envelope draws from."""

    OK = "ok"
    DEGRADED = "degraded"
    FAILED = "failed"
    UNAVAILABLE = "unavailable"
    REJECTED = "rejected"

    ALL = (OK, DEGRADED, FAILED, UNAVAILABLE, REJECTED)


@dataclass(frozen=True)
class ApiError:
    """A structured error: stable code, source exception kind, retryability.

    ``code`` is the stable machine-readable identifier clients branch on;
    ``kind`` names the :mod:`repro.errors` class it was mapped from;
    ``retryable`` tells the retry middleware (and clients) whether the same
    request may succeed on another attempt — true for infrastructure
    failures (network, dead hosts, fleet routing), false for semantic
    errors (unknown user, inactive session, bad request).
    """

    code: str
    kind: str
    message: str
    retryable: bool = False


#: Ordered (exception type → code/retryable) mapping.  First match wins, so
#: subclasses must appear before their bases.
_ERROR_TAXONOMY = (
    (FleetUnavailableError, "fleet-unavailable", True),
    (UnknownUserError, "unknown-user", False),
    (SessionError, "session", False),
    (LoginError, "login", False),
    (RegistrationError, "registration", False),
    (TransactionError, "transaction", False),
    (ForgedNonceError, "forged-nonce", False),
    (ReplayedOfferError, "replayed-offer", False),
    (DoubleFinalizeError, "double-finalize", False),
    (StaleCredentialError, "stale-credential", False),
    (HandshakeError, "handshake", False),
    (AuctionError, "auction", False),
    (NegotiationError, "negotiation", False),
    (MarketplaceError, "marketplace", False),
    (CatalogError, "catalog", False),
    (ReplicationError, "replication", False),
    (ECommerceError, "ecommerce", False),
    (MessageTimeoutError, "timeout", True),
    (MessageDeliveryError, "delivery", True),
    (AuthenticationError, "authentication", False),
    (AgentError, "agent", False),
    (HostUnreachableError, "host-unreachable", True),
    (LinkDownError, "link-down", True),
    (TransferDroppedError, "transfer-dropped", True),
    (NetworkError, "network", True),
    (PlatformError, "platform", False),
    (ColdStartError, "cold-start", False),
    (RecommendationError, "recommendation", False),
    (ReproError, "internal", False),
)


#: Every error code an envelope can legally carry: the taxonomy above, the
#: catch-all, the gateway's request-validation refusals and the middleware
#: chain's own codes.  The invariant auditor checks observed envelopes
#: against this set (the "closed taxonomy" invariant).
KNOWN_ERROR_CODES = frozenset(code for _, code, _ in _ERROR_TAXONOMY) | {
    "internal",
    "unknown-operation",
    "unsupported-version",
    "admission-rejected",
    "deadline-exceeded",
}

#: The authentication/handshake family of error codes.  The gateway bumps an
#: ``api.auth.rejected.<code>`` counter whenever a dispatch fails with one of
#: these, so an adversarial run can prove (from metrics alone) that protocol
#: attacks were refused rather than silently absorbed.
AUTH_REJECTION_CODES = frozenset(
    {
        "authentication",
        "handshake",
        "forged-nonce",
        "replayed-offer",
        "double-finalize",
        "stale-credential",
    }
)


def classify_error(exc: BaseException) -> ApiError:
    """Map any library exception onto the structured error taxonomy.

    Unrecognised exceptions (which should not escape the library) map to the
    catch-all ``internal`` code so the envelope contract — a structured
    error, never a raw traceback — holds unconditionally.
    """
    for exc_type, code, retryable in _ERROR_TAXONOMY:
        if isinstance(exc, exc_type):
            return ApiError(
                code=code,
                kind=type(exc).__name__,
                message=str(exc),
                retryable=retryable,
            )
    return ApiError(
        code="internal", kind=type(exc).__name__, message=str(exc), retryable=False
    )


@dataclass
class Provenance:
    """Where (and how honestly) an answer came from.

    Folds in the fan-out accounting of
    :class:`~repro.ecommerce.buyer_server.FleetQueryResult` — per-shard
    latencies, shards answered from stale replicas (name → lag),
    unreachable shards, read-repaired shards — plus the middleware chain's
    own retry/failover bookkeeping.
    """

    served_by: Optional[str] = None
    shard_latencies_ms: Dict[str, float] = field(default_factory=dict)
    stale_shards: Dict[str, int] = field(default_factory=dict)
    unreachable_shards: Tuple[str, ...] = ()
    repaired_shards: Tuple[str, ...] = ()
    #: Shards a tail-latency hedge was launched against (fleet hedged
    #: fan-out); a hedge that also *won* — the replica's answer came back
    #: before the slow primary's would have — appears in
    #: ``hedge_won_shards`` too.  Hedging never marks an answer degraded by
    #: itself: a winning hedge from an up-to-date replica is exact, and a
    #: lagging one is already reported through ``stale_shards``.
    hedged_shards: Tuple[str, ...] = ()
    hedge_won_shards: Tuple[str, ...] = ()
    retries: int = 0
    failed_over: bool = False
    #: True exactly when the answer was served from the batch-refresh
    #: envelope cache (``PlatformConfig.api_recommendation_cache``) instead
    #: of being computed for this request.  A cached answer is *not*
    #: degraded: eligibility rules guarantee it is byte-identical to what a
    #: fresh computation would have returned (see :mod:`repro.api.caching`).
    served_from_cache: bool = False

    @property
    def degraded(self) -> bool:
        """True when any part of the answer was stale, missing or failed over."""
        return bool(self.stale_shards or self.unreachable_shards or self.failed_over)

    @property
    def repaired(self) -> bool:
        """True when a stale answer triggered a successful read-repair catch-up."""
        return bool(self.repaired_shards)


@dataclass
class ApiResponse:
    """The uniform envelope every gateway operation returns.

    ``ok`` is true for ``ok`` *and* ``degraded`` — a degraded answer is
    still an answer (correct for the reachable community); callers that need
    full-fidelity data check :attr:`status` or :attr:`Provenance.degraded`
    explicitly.  ``result`` is one of the typed payload dataclasses from
    :mod:`repro.api.requests`; ``error`` is set exactly when ``ok`` is
    false.  Timing is simulated milliseconds on the platform clock.
    """

    operation: str = ""
    status: str = ApiStatus.OK
    api_version: str = API_VERSION
    request_id: int = 0
    result: Any = None
    error: Optional[ApiError] = None
    provenance: Provenance = field(default_factory=Provenance)
    started_at_ms: float = 0.0
    finished_at_ms: float = 0.0

    @property
    def latency_ms(self) -> float:
        """Simulated time the operation took (including retries and backoff)."""
        return self.finished_at_ms - self.started_at_ms

    @property
    def ok(self) -> bool:
        return self.status in (ApiStatus.OK, ApiStatus.DEGRADED)

    @property
    def failed(self) -> bool:
        return not self.ok

    def describe(self) -> str:
        """One human-readable line, used by the examples."""
        base = f"[{self.status}] {self.operation} ({self.latency_ms:.2f} ms)"
        if self.error is not None:
            base += f" error={self.error.code}: {self.error.message}"
        if self.provenance.served_by:
            base += f" served_by={self.provenance.served_by}"
        if self.provenance.degraded:
            base += (
                f" degraded(stale={list(self.provenance.stale_shards)}, "
                f"unreachable={list(self.provenance.unreachable_shards)}, "
                f"failed_over={self.provenance.failed_over})"
            )
        return base
