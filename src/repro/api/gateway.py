"""The platform gateway: one versioned front door for every client operation.

:class:`PlatformGateway` is the blessed public surface of the platform.
Examples, scenario drivers and external callers issue *every* client
operation — register, login, query, buy, negotiate, recommendations,
find-similar, admin stats — through it and receive the uniform
:class:`~repro.api.envelope.ApiResponse` envelope, instead of driving
:class:`~repro.ecommerce.session.ConsumerSession`,
:class:`~repro.ecommerce.buyer_server.BuyerServerFleet` and the raw servers
directly (those entry points survive as deprecation shims).

Requests flow through the middleware chain documented in
:mod:`repro.api.middleware` (metrics → admission control → deadline →
retry → queueing → dispatch).  The dispatch maps every library exception
onto the structured error taxonomy — the gateway **never raises** for a
client operation; the worst case is an ``unavailable`` envelope after retry
exhaustion.  On the happy path the gateway charges nothing to the simulated
clock, so gateway results are byte-identical to the direct calls they
replaced on the same seed.

Obtain one from the platform::

    platform = build_platform(seed=7, num_buyer_servers=3, replication_factor=1)
    gateway = platform.gateway()
    gateway.login("alice")
    response = gateway.query("alice", "laptop")
    for hit in response.result.hits:
        ...

For overlapping load, :meth:`PlatformGateway.submit` enqueues a request at
a virtual arrival time and returns an
:class:`~repro.api.concurrency.ApiFuture`; draining
``gateway.sessions.run_until_idle()`` interleaves every open session by
next-event time (see :mod:`repro.api.concurrency`)::

    futures = [gateway.submit(QueryRequest(u, "laptop"), at_ms=t)
               for t, u in arrivals]
    gateway.sessions.run_until_idle()
    statuses = [f.response.status for f in futures]

Admission control, deadlines and retries are configured through the
``PlatformConfig.api_*`` knobs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple, TYPE_CHECKING

from repro.errors import (
    HandshakeError,
    HostUnreachableError,
    MarketplaceError,
    ReproError,
    UnknownUserError,
)
from repro.api.caching import RecommendationEnvelopeCache
from repro.api.envelope import (
    AUTH_REJECTION_CODES,
    ApiError,
    ApiResponse,
    ApiStatus,
    Provenance,
    SUPPORTED_VERSIONS,
    classify_error,
)
from repro.api.middleware import (
    AdmissionControlMiddleware,
    ApiCall,
    DeadlineMiddleware,
    MetricsMiddleware,
    Middleware,
    QueueingMiddleware,
    RetryMiddleware,
    TokenBucket,
    build_chain,
)
from repro.api.requests import (
    AdminStatsRequest,
    AuctionRequest,
    BuyRequest,
    CrossSellRequest,
    FindSimilarRequest,
    HandshakeRequest,
    HandshakeResult,
    LoginRequest,
    LoginResult,
    LogoutRequest,
    LogoutResult,
    NegotiateRequest,
    PlatformStats,
    QueryHits,
    QueryRequest,
    RateRequest,
    RatingResult,
    RecommendationList,
    RecommendationsRequest,
    RegisterRequest,
    RegistrationResult,
    SimilarConsumers,
    TradeOutcome,
    WeeklyHottestRequest,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.concurrency import ApiFuture, SessionScheduler
    from repro.core.items import Item
    from repro.ecommerce.platform_builder import ECommercePlatform
    from repro.ecommerce.session import ConsumerSession

__all__ = ["PlatformGateway", "RoutingUnavailableError"]


class RoutingUnavailableError(HostUnreachableError):
    """The gateway's own pre-dispatch liveness check failed.

    Raised **before** any work is dispatched to a buyer server or
    marketplace, which is what makes it safe for the retry middleware to
    replay even non-idempotent writes on it: no trade can have been applied
    when routing itself refused the request.  A ``HostUnreachableError``
    raised anywhere *else* (a mid-flight network failure) keeps its own
    kind and is never grounds for replaying a write.
    """


class PlatformGateway:
    """Versioned facade over an :class:`~repro.ecommerce.platform_builder.ECommercePlatform`.

    One instance per platform (``platform.gateway()`` caches it); the
    middleware chain and the admission bucket are shared across every
    request, which is what makes load shedding and the metrics meaningful.
    """

    def __init__(self, platform: "ECommercePlatform") -> None:
        self._platform = platform
        config = platform.config
        self._clock = platform.scheduler.clock
        self._metrics = platform.metrics
        self._request_counter = 0
        # consumer → (topology stamp, server) route cache, validated against
        # the fleet's versioned shard map: any epoch bump (promotion,
        # handback, split) or per-consumer move/loss changes the stamp and
        # lazily invalidates every entry.  Pure memoization of a pure
        # lookup — byte-identical to re-routing every request.
        self._route_cache: Dict[str, tuple] = {}

        bucket = (
            TokenBucket(
                capacity=float(config.api_admission_capacity),
                refill_per_ms=config.api_admission_refill_per_ms,
                last_refill_ms=self._clock.now,
            )
            if config.api_admission_capacity > 0
            else None
        )
        self.admission_bucket = bucket
        # Per-class weighted buckets (PlatformConfig.api_admission_classes):
        # classed operations draw from their class's bucket instead of the
        # shared default one, so shedding is no longer blind to what it
        # sheds.  Classes are iterated in sorted name order so bucket
        # construction (and hence the refill anchors) is deterministic.
        self.admission_class_buckets: Dict[str, TokenBucket] = {}
        operation_classes: Dict[str, str] = {}
        class_costs: Dict[str, float] = {}
        if config.api_admission_classes:
            for class_name in sorted(config.api_admission_classes):
                spec = config.api_admission_classes[class_name]
                self.admission_class_buckets[class_name] = TokenBucket(
                    capacity=float(spec["capacity"]),
                    refill_per_ms=float(spec["refill_per_ms"]),
                    last_refill_ms=self._clock.now,
                )
                class_costs[class_name] = float(spec.get("cost", 1.0))
                for operation in spec["operations"]:
                    operation_classes[operation] = class_name
        #: The installed chain, outermost first — see
        #: :mod:`repro.api.middleware` for the ordering rationale.
        self.middlewares: Tuple[Middleware, ...] = (
            MetricsMiddleware(self._metrics, self._clock),
            AdmissionControlMiddleware(
                bucket,
                self._metrics,
                self._clock,
                class_buckets=self.admission_class_buckets,
                operation_classes=operation_classes,
                class_costs=class_costs,
            ),
            DeadlineMiddleware(config.api_deadline_ms, self._metrics, self._clock),
            RetryMiddleware(
                config.api_max_retries,
                config.api_retry_backoff_ms,
                self._metrics,
                self._clock,
            ),
            QueueingMiddleware(self._metrics),
        )
        self._handler = build_chain(list(self.middlewares), self._dispatch)
        # Envelope cache for ``recommendations`` (default off — constructed
        # only when PlatformConfig.api_recommendation_cache opts in, so the
        # default request path and hook graph stay byte-identical).
        self.recommendation_cache = (
            RecommendationEnvelopeCache()
            if getattr(config, "api_recommendation_cache", False)
            else None
        )
        self._sessions: Optional["SessionScheduler"] = None
        self._operations: Dict[type, Callable[[Any], Tuple[Any, Provenance, bool]]] = {
            RegisterRequest: self._op_register,
            LoginRequest: self._op_login,
            LogoutRequest: self._op_logout,
            QueryRequest: self._op_query,
            BuyRequest: self._op_buy,
            AuctionRequest: self._op_join_auction,
            NegotiateRequest: self._op_negotiate,
            RateRequest: self._op_rate,
            RecommendationsRequest: self._op_recommendations,
            WeeklyHottestRequest: self._op_weekly_hottest,
            CrossSellRequest: self._op_cross_sell,
            FindSimilarRequest: self._op_find_similar,
            AdminStatsRequest: self._op_admin_stats,
            HandshakeRequest: self._op_handshake,
        }

    # -- generic execution ----------------------------------------------------

    def execute(self, request: Any) -> ApiResponse:
        """Run any typed request through the middleware chain, synchronously.

        The convenience methods below are thin wrappers that build the
        request dataclass and call this.  Unknown request types and
        unsupported ``api_version`` values return ``failed`` envelopes —
        consistent with the no-raise contract of every other path.
        """
        return self._run(request)

    def submit(
        self, request: Any, at_ms: Optional[float] = None, session_id: str = ""
    ) -> "ApiFuture":
        """Enqueue ``request`` for concurrent execution; returns a future.

        The request arrives at virtual time ``at_ms`` (default: the session
        scheduler's current horizon) and is resolved when
        ``gateway.sessions`` drains — see :mod:`repro.api.concurrency` for
        the virtual-time model.  ``session_id`` is a free-form label
        carried on the future for workload bookkeeping.
        """
        return self.sessions.submit(request, at_ms=at_ms, session_id=session_id)

    @property
    def sessions(self) -> "SessionScheduler":
        """The gateway's session scheduler, created on first use.

        Lazy so the sequential path never constructs (or pays for) the
        concurrency layer — one more guarantee that ``execute``-only runs
        stay byte-identical to pre-concurrency output.
        """
        if self._sessions is None:
            from repro.api.concurrency import SessionScheduler

            self._sessions = SessionScheduler(self)
        return self._sessions

    def _run(
        self, request: Any, clock: Any = None, queues: Any = None
    ) -> ApiResponse:
        """Shared request path for ``execute`` (sequential) and ``submit``.

        ``clock`` is ``None`` sequentially — the call runs on the shared
        platform clock, exactly as before the concurrency layer — or the
        session's :class:`~repro.platform.clock.SessionClock` on the submit
        path, where ``queues`` also enables per-server queueing.
        """
        call_clock = clock if clock is not None else self._clock
        operation = getattr(type(request), "operation", None)
        self._request_counter += 1
        request_id = self._request_counter
        started = call_clock.now
        if operation is None or type(request) not in self._operations:
            operation = operation or "unknown"
            response = self._refuse(
                operation,
                ApiError(
                    code="unknown-operation",
                    kind=type(request).__name__,
                    message=f"{type(request).__name__} is not a gateway request",
                ),
            )
        elif request.api_version not in SUPPORTED_VERSIONS:
            response = self._refuse(
                operation,
                ApiError(
                    code="unsupported-version",
                    kind="ApiVersion",
                    message=(
                        f"api_version {request.api_version!r} is not supported "
                        f"(supported: {', '.join(SUPPORTED_VERSIONS)})"
                    ),
                ),
            )
        else:
            call = ApiCall(
                gateway=self,
                request=request,
                operation=operation,
                request_id=request_id,
                started_at_ms=started,
                clock=clock,
                queues=queues,
            )
            response = self._handler(call)
            response.provenance.retries = call.attempts
            if call.failed_over:
                response.provenance.failed_over = True
        response.operation = operation
        response.request_id = request_id
        response.started_at_ms = started
        response.finished_at_ms = call_clock.now
        return response

    def _refuse(self, operation: str, error: ApiError) -> ApiResponse:
        """A pre-dispatch refusal, still fully accounted in the metrics.

        Refusals never reach the middleware chain (there is no operation to
        dispatch), but "metrics sees everything" is part of the contract —
        a flood of bad-version requests must be visible in ``api.*``.
        Refusals spend no simulated time, so the latency sample is 0.
        """
        self._metrics.counter("api.requests").increment()
        self._metrics.counter(f"api.requests.{operation}").increment()
        self._metrics.counter(f"api.status.{ApiStatus.FAILED}").increment()
        self._metrics.timer("api.latency_ms").record(0.0)
        self._metrics.timer(f"api.latency_ms.{operation}").record(0.0)
        return ApiResponse(status=ApiStatus.FAILED, error=error)

    # -- convenience methods (one per operation) -------------------------------

    def register(self, user_id: str, display_name: str = "", **kwargs) -> ApiResponse:
        return self.execute(RegisterRequest(user_id, display_name, **kwargs))

    def login(self, user_id: str, register: bool = True, **kwargs) -> ApiResponse:
        return self.execute(LoginRequest(user_id, register, **kwargs))

    def logout(self, user_id: str, **kwargs) -> ApiResponse:
        return self.execute(LogoutRequest(user_id, **kwargs))

    def query(
        self,
        user_id: str,
        keyword: str,
        category: Optional[str] = None,
        marketplaces: Optional[Tuple[str, ...]] = None,
        **kwargs,
    ) -> ApiResponse:
        if marketplaces is not None:
            marketplaces = tuple(marketplaces)
        return self.execute(
            QueryRequest(user_id, keyword, category, marketplaces, **kwargs)
        )

    def buy(
        self, user_id: str, item: "Item", marketplace: Optional[str] = None, **kwargs
    ) -> ApiResponse:
        return self.execute(BuyRequest(user_id, item, marketplace, **kwargs))

    def join_auction(
        self,
        user_id: str,
        item: "Item",
        max_price: float,
        marketplace: Optional[str] = None,
        **kwargs,
    ) -> ApiResponse:
        return self.execute(
            AuctionRequest(user_id, item, max_price, marketplace, **kwargs)
        )

    def negotiate(
        self,
        user_id: str,
        item: "Item",
        max_price: float,
        marketplace: Optional[str] = None,
        **kwargs,
    ) -> ApiResponse:
        return self.execute(
            NegotiateRequest(user_id, item, max_price, marketplace, **kwargs)
        )

    def rate(self, user_id: str, item: "Item", rating: float, **kwargs) -> ApiResponse:
        return self.execute(RateRequest(user_id, item, rating, **kwargs))

    def recommendations(
        self, user_id: str, k: int = 10, category: Optional[str] = None, **kwargs
    ) -> ApiResponse:
        return self.execute(RecommendationsRequest(user_id, k, category, **kwargs))

    def weekly_hottest(
        self, user_id: str, k: int = 10, category: Optional[str] = None, **kwargs
    ) -> ApiResponse:
        return self.execute(WeeklyHottestRequest(user_id, k, category, **kwargs))

    def cross_sell(
        self,
        user_id: str,
        k: int = 5,
        category: Optional[str] = None,
        basket: Optional[Tuple[str, ...]] = None,
        **kwargs,
    ) -> ApiResponse:
        if basket is not None:
            basket = tuple(basket)
        return self.execute(CrossSellRequest(user_id, k, category, basket, **kwargs))

    def find_similar(
        self, user_id: str, category: Optional[str] = None, **kwargs
    ) -> ApiResponse:
        return self.execute(FindSimilarRequest(user_id, category, **kwargs))

    def admin_stats(self, **kwargs) -> ApiResponse:
        return self.execute(AdminStatsRequest(**kwargs))

    def handshake(
        self,
        user_id: str,
        marketplace: Optional[str] = None,
        tamper: Optional[str] = None,
        **kwargs,
    ) -> ApiResponse:
        return self.execute(HandshakeRequest(user_id, marketplace, tamper, **kwargs))

    # -- dispatch --------------------------------------------------------------

    def _dispatch(self, call: ApiCall) -> ApiResponse:
        """Terminal handler: run the operation, mapping exceptions to envelopes.

        Retryable errors (network, dead hosts, fleet routing) come back as
        ``unavailable`` so the retry middleware can act on them; semantic
        errors come back as ``failed`` and are final.
        """
        runner = self._operations[type(call.request)]
        try:
            result, provenance, degraded = runner(call.request)
        except Exception as exc:  # noqa: BLE001 - the no-raise contract:
            # ReproError maps onto the taxonomy; anything else (a latent
            # TypeError deep in a workflow) becomes the catch-all
            # ``internal`` error rather than a raw traceback at the client.
            error = classify_error(exc)
            if error.code in AUTH_REJECTION_CODES:
                # Metrics-visible proof that a protocol attack was refused:
                # forged nonces, replays, double-finalizes and stale
                # credentials each bump their own rejection counter.
                self._metrics.counter(f"api.auth.rejected.{error.code}").increment()
            status = ApiStatus.UNAVAILABLE if error.retryable else ApiStatus.FAILED
            return ApiResponse(status=status, error=error)
        status = ApiStatus.DEGRADED if degraded else ApiStatus.OK
        return ApiResponse(status=status, result=result, provenance=provenance)

    # -- session plumbing ------------------------------------------------------

    def _session_for(self, user_id: str) -> "ConsumerSession":
        """The consumer's live session, re-homed after a failover.

        A session opened against a server that has since lost the shard (a
        promotion or drain moved it) is transparently re-established on the
        current owner; an inactive session is *not* resurrected — using the
        API after logout is a client error, exactly as it was on
        :class:`~repro.ecommerce.session.ConsumerSession`.  The inactive
        check comes first: a semantic client error must surface as
        ``failed`` immediately, never burn retries or trigger a failover
        just because the (irrelevant) owner happens to be down.
        """
        session = self._platform.session(user_id)
        if not session.is_active:
            return session  # the operation raises SessionError: failed, final
        current = self._server_for(user_id)
        self._require_live(current)
        if session.server is not current:
            session = self._platform.login(user_id, register=False)
        return session

    def _server_for(self, user_id: str):
        """The consumer's serving server, memoized against topology changes.

        The cache key is the fleet's elastic state stamp — shard-map epoch
        plus the per-consumer migration/loss counters — so a promotion,
        handback, split step or consumer loss anywhere in the fleet
        invalidates every cached route the moment it happens, while steady
        traffic pays one dict probe instead of a hash + split descent per
        request.  Single-server platforms bypass the cache (routing is
        constant there).
        """
        fleet = self._platform.fleet
        if fleet is None:
            return self._platform.buyer_server_for(user_id)
        stamp = (
            fleet.shard_map.epoch,
            fleet.migrated_consumers,
            fleet.lost_consumers,
        )
        cached = self._route_cache.get(user_id)
        if cached is not None and cached[0] == stamp:
            return cached[1]
        server = self._platform.buyer_server_for(user_id)
        self._route_cache[user_id] = (stamp, server)
        return server

    @staticmethod
    def _require_live(server) -> None:
        """The browser's connection check: a dead host serves nothing.

        The legacy session path models the browser as co-located with its
        buyer agent server, so local requests never consulted host liveness
        — a crashed server would happily answer from dead memory.  The
        gateway refuses instead (retryable ``host-unreachable``, raised as
        :class:`RoutingUnavailableError` so the retry middleware knows no
        work has started), which is what lets it promote a replica and
        re-route — writes included.
        """
        if not server.context.host.is_running:
            raise RoutingUnavailableError(
                f"buyer agent server {server.name!r} is down"
            )

    def _heal_routing(self, user_id: Optional[str]) -> bool:
        """Re-route around a crashed primary before a retry attempt.

        When the consumer's shard is owned by a crashed server **and** a
        live replica of it exists, run the promotion failover
        (:meth:`~repro.ecommerce.buyer_server.BuyerServerFleet.handle_server_failure`)
        so the next attempt lands on the promoted owner.  Returns True when
        a failover actually ran.  Never drains from dead memory — with no
        live replica the retry simply runs out against the dead host.
        """
        fleet = self._platform.fleet
        if fleet is None or user_id is None:
            return False
        try:
            shard = fleet.shard_of(user_id)
        except ReproError:
            return False
        owner = fleet.owner_of_shard(shard)
        if owner.context.host.is_running:
            return False
        if not fleet.live_replica_holders(owner):
            return False
        try:
            fleet.handle_server_failure(shard, strategy="promote")
        except ReproError:
            return False
        return True

    # -- operations ------------------------------------------------------------

    def _op_register(self, request: RegisterRequest):
        self._require_live(self._server_for(request.user_id))
        self._platform.register_consumer(request.user_id, request.display_name)
        server = self._server_for(request.user_id)
        return (
            RegistrationResult(user_id=request.user_id, server=server.name),
            Provenance(served_by=server.name),
            False,
        )

    def _op_login(self, request: LoginRequest):
        self._require_live(self._server_for(request.user_id))
        session = self._platform.login(request.user_id, register=request.register)
        return (
            LoginResult(
                user_id=request.user_id,
                bra_id=session.bra_id,
                server=session.server.name,
            ),
            Provenance(served_by=session.server.name),
            False,
        )

    def _op_logout(self, request: LogoutRequest):
        # Same liveness / re-homing rules as every other session op: a
        # crashed owner fails retryable (the retry middleware may promote a
        # replica, after which the re-homed session is the one torn down) —
        # never a silent logout against dead memory.
        session = self._session_for(request.user_id)
        server = session.server.name
        session.logout()
        return (LogoutResult(user_id=request.user_id), Provenance(served_by=server), False)

    def _op_query(self, request: QueryRequest):
        session = self._session_for(request.user_id)
        hits = session._query(
            request.keyword,
            category=request.category,
            marketplaces=list(request.marketplaces)
            if request.marketplaces is not None
            else None,
        )
        return (
            QueryHits(
                hits=tuple(hits),
                recommendations=tuple(session.last_recommendations),
            ),
            Provenance(served_by=session.server.name),
            False,
        )

    def _trade(self, request, perform):
        session = self._session_for(request.user_id)
        trade = perform(session)
        return (
            TradeOutcome(
                succeeded=trade.succeeded,
                transaction=trade.transaction,
                outcome=dict(trade.outcome),
                recommendations=tuple(trade.recommendations),
            ),
            Provenance(served_by=session.server.name),
            False,
        )

    def _op_buy(self, request: BuyRequest):
        return self._trade(
            request,
            lambda session: session._buy(request.item, marketplace=request.marketplace),
        )

    def _op_join_auction(self, request: AuctionRequest):
        return self._trade(
            request,
            lambda session: session._join_auction(
                request.item, request.max_price, marketplace=request.marketplace
            ),
        )

    def _op_negotiate(self, request: NegotiateRequest):
        return self._trade(
            request,
            lambda session: session._negotiate(
                request.item, request.max_price, marketplace=request.marketplace
            ),
        )

    def _op_rate(self, request: RateRequest):
        session = self._session_for(request.user_id)
        rating = session._rate(request.item, request.rating)
        return (
            RatingResult(
                user_id=request.user_id,
                item_id=request.item.item_id,
                rating=rating,
            ),
            Provenance(served_by=session.server.name),
            False,
        )

    def _op_recommendations(self, request: RecommendationsRequest):
        session = self._session_for(request.user_id)
        if self.recommendation_cache is not None:
            cached = self.recommendation_cache.lookup(
                session.server.recommendations,
                request.user_id,
                request.k,
                request.category,
            )
            if cached is not None:
                return (
                    RecommendationList(recommendations=tuple(cached)),
                    Provenance(
                        served_by=session.server.name, served_from_cache=True
                    ),
                    False,
                )
        recommendations = session._recommendations(k=request.k, category=request.category)
        return (
            RecommendationList(recommendations=tuple(recommendations)),
            Provenance(served_by=session.server.name),
            False,
        )

    def _op_weekly_hottest(self, request: WeeklyHottestRequest):
        session = self._session_for(request.user_id)
        recommendations = session._weekly_hottest(k=request.k, category=request.category)
        return (
            RecommendationList(recommendations=tuple(recommendations)),
            Provenance(served_by=session.server.name),
            False,
        )

    def _op_cross_sell(self, request: CrossSellRequest):
        session = self._session_for(request.user_id)
        recommendations = session._cross_sell(
            k=request.k,
            category=request.category,
            basket=list(request.basket) if request.basket is not None else None,
        )
        return (
            RecommendationList(recommendations=tuple(recommendations)),
            Provenance(served_by=session.server.name),
            False,
        )

    def _op_find_similar(self, request: FindSimilarRequest):
        fleet = self._platform.fleet
        if fleet is not None:
            result = fleet.query_similar(request.user_id, category=request.category)
            owner = fleet.server_for(request.user_id)
            provenance = Provenance(
                served_by=owner.name if owner.context.host.is_running else None,
                shard_latencies_ms=dict(result.shard_latencies_ms),
                stale_shards=dict(result.stale_shards),
                unreachable_shards=tuple(result.unreachable_shards),
                repaired_shards=tuple(result.repaired_shards),
                hedged_shards=tuple(result.hedged_shards),
                hedge_won_shards=tuple(result.hedge_won_shards),
            )
            return (
                SimilarConsumers(neighbors=tuple(result.neighbors)),
                provenance,
                result.degraded,
            )
        server = self._platform.buyer_server
        self._require_live(server)
        if not server.user_db.is_registered(request.user_id):
            raise UnknownUserError(
                f"consumer {request.user_id!r} is not registered with the mechanism"
            )
        profile = server.user_db.profile(request.user_id)
        ranked = server.recommendations.neighbor_index.find_similar(
            profile, category=request.category
        )
        return (
            SimilarConsumers(neighbors=tuple(ranked)),
            Provenance(served_by=server.name),
            False,
        )

    def _op_admin_stats(self, request: AdminStatsRequest):
        return (
            PlatformStats(stats=self._platform.stats()),
            Provenance(served_by="coordinator"),
            False,
        )

    def _op_handshake(self, request: HandshakeRequest):
        """Run the trade-handshake protocol (honest or tampered) end to end.

        Deliberately session-free: an attacker probing the handshake does
        not need — and must not be required — to hold a consumer session,
        so forged/replayed attempts are rejected by the broker itself, not
        masked by an earlier ``unknown-user`` refusal.
        """
        marketplaces = self._platform.marketplaces
        if request.marketplace is None:
            server = marketplaces[0]
        else:
            by_name = {m.name: m for m in marketplaces}
            if request.marketplace not in by_name:
                raise MarketplaceError(
                    f"unknown marketplace {request.marketplace!r}"
                )
            server = by_name[request.marketplace]
        broker = server.handshakes
        if broker is None:
            raise HandshakeError(
                f"marketplace {server.name!r} does not secure trades; "
                f"build the platform with handshake_trades=True"
            )
        transcript = broker.attempt(
            request.user_id, self._clock.now, tamper=request.tamper
        )
        return (
            HandshakeResult(
                handshake_id=transcript.handshake_id,
                marketplace=transcript.marketplace,
                buyer=transcript.buyer,
                verified=transcript.verified,
            ),
            Provenance(served_by=server.name),
            False,
        )
