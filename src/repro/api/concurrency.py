"""Concurrent-session scheduling over the sequential gateway.

Every scenario driver before this module issued one gateway request at a
time: the admission bucket, deadlines and retry backoff were never
exercised by *overlapping* load, even though the paper's marketplace serves
thousands of simultaneous mobile buyer agents.  This module adds the
missing concurrency layer without giving up determinism:

- :class:`ApiFuture` — the handle returned by
  :meth:`~repro.api.gateway.PlatformGateway.submit`; resolved with the
  ordinary :class:`~repro.api.envelope.ApiResponse` envelope when the
  scheduler processes the request.
- :class:`ServerQueues` — per-buyer-server FIFO occupancy in virtual time;
  :class:`~repro.api.middleware.QueueingMiddleware` charges the wait to the
  submitting session's clock.
- :class:`SessionScheduler` — an event loop that interleaves open sessions
  by next-event (virtual arrival) time.

**How virtual time works.**  The platform's transport advances one shared
:class:`~repro.platform.clock.SimulationClock`; under concurrency that
base clock degenerates into a *work meter* — the running sum of every
session's service time.  Each submitted call instead observes a
:class:`~repro.platform.clock.SessionClock` anchored at its virtual
arrival time: real dispatch work (the transport) moves every session in
lockstep, while backoff, queue waits and think time move only the session
that spends them.  The scheduler processes submissions in nondecreasing
virtual-arrival order — closed-loop follow-ups (submitted from a future's
done-callback) always land at or after the finish that triggered them, so
the order is total and the admission bucket's refill anchor only ever
moves forward.  Determinism follows: same seed, same submissions, same
envelope stream, byte for byte.

Sequential ``gateway.execute`` calls never touch this module; they run on
the shared platform clock with queueing disabled, byte-identical to
pre-concurrency output.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple, TYPE_CHECKING
import heapq
import itertools

from repro.errors import ApiCallFailedError, ClockError, FuturePendingError
from repro.platform.clock import SessionClock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.envelope import ApiResponse
    from repro.api.gateway import PlatformGateway

__all__ = ["ApiFuture", "ServerQueues", "SessionScheduler"]


class ApiFuture:
    """Deferred result of a submitted gateway request.

    Mirrors the familiar futures shape (``done`` / ``result`` /
    ``add_done_callback``) on the simulated clock: the scheduler resolves
    it synchronously while draining its event loop, so there is nothing to
    block on — reading an unresolved future raises
    :class:`~repro.errors.FuturePendingError` instead of waiting.

    Done-callbacks receive the future itself and run inside the scheduler
    loop; submitting a follow-up request from one is the closed-loop
    (think-time) workload idiom.
    """

    def __init__(self, request: Any, submitted_at_ms: float, session_id: str = "") -> None:
        self.request = request
        self.submitted_at_ms = float(submitted_at_ms)
        self.session_id = session_id
        self.finished_at_ms: Optional[float] = None
        self._response: Optional["ApiResponse"] = None
        self._callbacks: List[Callable[["ApiFuture"], None]] = []

    @property
    def done(self) -> bool:
        return self._response is not None

    @property
    def response(self) -> "ApiResponse":
        """The full envelope; raises if the scheduler has not run this yet."""
        if self._response is None:
            raise FuturePendingError(
                f"future for {type(self.request).__name__} submitted at "
                f"{self.submitted_at_ms:.3f} ms is not resolved; run the "
                f"session scheduler first"
            )
        return self._response

    def result(self) -> Any:
        """The typed result payload (``response.result``).

        Follows the futures convention: a future that resolved with a
        failed envelope (failed / unavailable / rejected) *raises*
        :class:`~repro.errors.ApiCallFailedError` carrying the envelope's
        :class:`~repro.api.envelope.ApiError` — silently returning ``None``
        here made ``future.result().hits`` blow up with an unrelated
        ``AttributeError`` three frames later.  Callers that want to branch
        on the taxonomy without exceptions read ``.response`` instead.
        """
        response = self.response
        if response.failed:
            error = getattr(response, "error", None)
            detail = (
                f" ({error.code}: {error.message})" if error is not None else ""
            )
            raise ApiCallFailedError(
                f"{type(self.request).__name__} submitted at "
                f"{self.submitted_at_ms:.3f} ms resolved with status "
                f"{response.status!r}{detail}",
                error=error,
            )
        return response.result

    def add_done_callback(self, callback: Callable[["ApiFuture"], None]) -> None:
        if self._response is not None:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _resolve(self, response: "ApiResponse", finished_at_ms: float) -> None:
        self._response = response
        self.finished_at_ms = float(finished_at_ms)
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = self._response.status if self._response is not None else "pending"
        return (
            f"ApiFuture({type(self.request).__name__}, "
            f"at={self.submitted_at_ms:.3f}ms, {state})"
        )


class ServerQueues:
    """Per-server FIFO occupancy in virtual time.

    Each buyer agent server is a single-service-channel queue: it is busy
    until the virtual finish time of the last attempt it served.  A session
    routed to a busy server waits until ``busy_until`` — the wait is the
    queueing delay :class:`~repro.api.middleware.QueueingMiddleware` charges
    to the session's own clock and records in ``api.queue_wait_ms``.
    """

    def __init__(self) -> None:
        self._busy_until: Dict[str, float] = {}
        self._served: Dict[str, int] = {}
        self._busy_ms: Dict[str, float] = {}
        self._queued_ms: Dict[str, float] = {}

    def wait_for(self, server: str, now_ms: float) -> float:
        """Virtual time at which ``server`` can start work arriving ``now_ms``."""
        return max(float(now_ms), self._busy_until.get(server, 0.0))

    def occupy(self, server: str, started_ms: float, finished_ms: float) -> None:
        """Record that ``server`` was held from ``started_ms`` to ``finished_ms``."""
        if finished_ms > self._busy_until.get(server, 0.0):
            self._busy_until[server] = float(finished_ms)
        self._served[server] = self._served.get(server, 0) + 1
        held = float(finished_ms) - float(started_ms)
        if held > 0:
            self._busy_ms[server] = self._busy_ms.get(server, 0.0) + held

    def record_wait(self, server: str, waited_ms: float) -> None:
        """Accumulate queueing delay charged to sessions stuck behind
        ``server`` — the per-server backlog gauge the saturation sweep
        reports."""
        if waited_ms > 0:
            self._queued_ms[server] = (
                self._queued_ms.get(server, 0.0) + float(waited_ms)
            )

    def busy_until(self, server: str) -> float:
        return self._busy_until.get(server, 0.0)

    def served(self, server: str) -> int:
        """Attempts this server has processed (queue-depth accounting)."""
        return self._served.get(server, 0)

    def busy_ms(self, server: str) -> float:
        """Total simulated time ``server`` spent occupied (utilization)."""
        return self._busy_ms.get(server, 0.0)

    def queued_ms(self, server: str) -> float:
        """Total queueing delay sessions spent waiting for ``server``."""
        return self._queued_ms.get(server, 0.0)

    def snapshot(self) -> Dict[str, float]:
        """Copy of every server's ``busy_until`` (for reports/assertions)."""
        return dict(self._busy_until)

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Cumulative per-server counters (for snapshot/delta reporting)."""
        names = (
            set(self._busy_until)
            | set(self._served)
            | set(self._busy_ms)
            | set(self._queued_ms)
        )
        return {
            name: {
                "busy_until": self._busy_until.get(name, 0.0),
                "busy_ms": self._busy_ms.get(name, 0.0),
                "queued_ms": self._queued_ms.get(name, 0.0),
                "served": float(self._served.get(name, 0)),
            }
            for name in sorted(names)
        }


class SessionScheduler:
    """Event loop interleaving open gateway sessions by virtual arrival time.

    Obtained lazily as ``gateway.sessions``; :meth:`submit` (or the
    gateway's :meth:`~repro.api.gateway.PlatformGateway.submit` forwarder)
    enqueues a request at a virtual arrival time and returns an
    :class:`ApiFuture`.  :meth:`run_until_idle` drains the queue in
    nondecreasing arrival order, executing each call to completion on a
    :class:`~repro.platform.clock.SessionClock` anchored at its arrival —
    the simulation stays synchronous *within* a call, while contention
    across calls is modelled by :class:`ServerQueues` and the shared
    admission bucket reading virtual arrival times.

    ``horizon`` is the scheduler's monotone virtual-time floor: arrivals in
    the past are clamped to it (same policy as
    :meth:`~repro.platform.clock.Scheduler.call_at`), which is what keeps
    the processed stream sorted and the run replayable.
    """

    def __init__(self, gateway: "PlatformGateway") -> None:
        self._gateway = gateway
        self._clock = gateway._clock
        self._metrics = gateway._metrics
        self.queues = ServerQueues()
        self._heap: List[Tuple[float, int, ApiFuture]] = []
        self._sequence = itertools.count()
        # Anchor the virtual-time floor at the platform clock: building the
        # platform already spent simulated time (host boots, registrations),
        # and a session arriving "now" must observe the same now a
        # sequential ``execute`` call would.
        self._horizon = self._clock.now
        self._submitted = 0
        self._completed = 0

    # -- submission ---------------------------------------------------------

    def submit(
        self, request: Any, at_ms: Optional[float] = None, session_id: str = ""
    ) -> ApiFuture:
        """Enqueue ``request`` to arrive at virtual time ``at_ms``.

        ``at_ms=None`` means "now" (the current horizon).  Arrivals before
        the horizon are clamped to it; the work still runs, in submission
        order.
        """
        at = self._horizon if at_ms is None else float(at_ms)
        if at < 0:
            raise ClockError(f"cannot submit a request at a negative time: {at}")
        at = max(at, self._horizon)
        future = ApiFuture(request, submitted_at_ms=at, session_id=session_id)
        heapq.heappush(self._heap, (at, next(self._sequence), future))
        self._submitted += 1
        self._metrics.counter("api.sessions.submitted").increment()
        return future

    # -- execution ----------------------------------------------------------

    @property
    def pending(self) -> int:
        """Submitted requests not yet executed (the backlog gauge)."""
        return len(self._heap)

    @property
    def submitted(self) -> int:
        return self._submitted

    @property
    def completed(self) -> int:
        return self._completed

    @property
    def horizon(self) -> float:
        """Virtual time of the latest arrival processed so far."""
        return self._horizon

    def step(self) -> bool:
        """Execute the earliest pending arrival; False when the queue is empty."""
        if not self._heap:
            return False
        at, _seq, future = heapq.heappop(self._heap)
        self._horizon = max(self._horizon, at)
        clock = SessionClock(self._clock, start_at=self._horizon)
        response = self._gateway._run(future.request, clock=clock, queues=self.queues)
        self._completed += 1
        self._metrics.counter("api.sessions.completed").increment()
        future._resolve(response, finished_at_ms=clock.now)
        return True

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Drain the arrival queue (including closed-loop follow-ups).

        Done-callbacks may submit new requests while draining; they join the
        same heap and are processed in virtual-time order.  ``max_events``
        guards against a callback loop that never stops re-submitting.
        """
        executed = 0
        while self.step():
            executed += 1
            if executed > max_events:
                raise ClockError(
                    f"session scheduler exceeded {max_events} events; "
                    f"likely a resubmission loop"
                )
        return executed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SessionScheduler(pending={self.pending}, "
            f"completed={self._completed}, horizon={self._horizon:.3f}ms)"
        )
