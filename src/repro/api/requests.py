"""Versioned typed request and result payloads for the gateway API.

One frozen request dataclass per client operation, each carrying:

- ``api_version`` — defaults to :data:`~repro.api.envelope.API_VERSION`;
  the gateway refuses unknown versions with a ``failed`` envelope (code
  ``unsupported-version``) instead of guessing at future semantics;
- ``deadline_ms`` — an optional per-request simulated-time budget that
  overrides the platform-wide ``PlatformConfig.api_deadline_ms`` default;
- the operation's own parameters, mirroring the legacy
  :class:`~repro.ecommerce.session.ConsumerSession` signatures so migration
  is mechanical.

The ``operation`` ClassVar is the stable wire name used for dispatch,
metrics (``api.requests.<operation>``) and the envelope's ``operation``
field.  ``retry_safe`` declares the operation idempotent for the retry
middleware: reads, lookups and the session lifecycle may be transparently
re-executed after an infrastructure failure, while the trade/rating writes
(``buy``, ``join_auction``, ``negotiate``, ``rate``) must not be — a reply
lost *after* the marketplace applied the trade would otherwise be bought
twice.  Non-retry-safe requests are still retried on the gateway's own
pre-dispatch routing failures (dead owner, fleet down), where provably no
work has happened yet.  Result payloads are small typed wrappers over the existing domain
objects (:class:`~repro.ecommerce.session.QueryResult`,
:class:`~repro.core.recommender.Recommendation`,
:class:`~repro.ecommerce.transactions.TransactionRecord`), so gateway
results compare byte-identical to the direct calls they replace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List, Optional, Tuple

from repro.core.items import Item
from repro.core.recommender import Recommendation
from repro.ecommerce.session import QueryResult
from repro.ecommerce.transactions import TransactionRecord
from repro.api.envelope import API_VERSION

__all__ = [
    "RegisterRequest",
    "LoginRequest",
    "LogoutRequest",
    "QueryRequest",
    "BuyRequest",
    "AuctionRequest",
    "NegotiateRequest",
    "RateRequest",
    "RecommendationsRequest",
    "WeeklyHottestRequest",
    "CrossSellRequest",
    "FindSimilarRequest",
    "AdminStatsRequest",
    "HandshakeRequest",
    "HandshakeResult",
    "RegistrationResult",
    "LoginResult",
    "LogoutResult",
    "QueryHits",
    "TradeOutcome",
    "RatingResult",
    "RecommendationList",
    "SimilarConsumers",
    "PlatformStats",
]


# ---------------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RegisterRequest:
    operation: ClassVar[str] = "register"
    retry_safe: ClassVar[bool] = True
    user_id: str
    display_name: str = ""
    deadline_ms: Optional[float] = None
    api_version: str = API_VERSION


@dataclass(frozen=True)
class LoginRequest:
    operation: ClassVar[str] = "login"
    retry_safe: ClassVar[bool] = True
    user_id: str
    #: Register unknown consumers first (the platform.login default).
    register: bool = True
    deadline_ms: Optional[float] = None
    api_version: str = API_VERSION


@dataclass(frozen=True)
class LogoutRequest:
    operation: ClassVar[str] = "logout"
    retry_safe: ClassVar[bool] = True
    user_id: str
    deadline_ms: Optional[float] = None
    api_version: str = API_VERSION


@dataclass(frozen=True)
class QueryRequest:
    operation: ClassVar[str] = "query"
    retry_safe: ClassVar[bool] = True
    user_id: str
    keyword: str
    category: Optional[str] = None
    marketplaces: Optional[Tuple[str, ...]] = None
    deadline_ms: Optional[float] = None
    api_version: str = API_VERSION


@dataclass(frozen=True)
class BuyRequest:
    operation: ClassVar[str] = "buy"
    retry_safe: ClassVar[bool] = False
    user_id: str
    item: Item
    marketplace: Optional[str] = None
    deadline_ms: Optional[float] = None
    api_version: str = API_VERSION


@dataclass(frozen=True)
class AuctionRequest:
    operation: ClassVar[str] = "join_auction"
    retry_safe: ClassVar[bool] = False
    user_id: str
    item: Item
    max_price: float
    marketplace: Optional[str] = None
    deadline_ms: Optional[float] = None
    api_version: str = API_VERSION


@dataclass(frozen=True)
class NegotiateRequest:
    operation: ClassVar[str] = "negotiate"
    retry_safe: ClassVar[bool] = False
    user_id: str
    item: Item
    max_price: float
    marketplace: Optional[str] = None
    deadline_ms: Optional[float] = None
    api_version: str = API_VERSION


@dataclass(frozen=True)
class RateRequest:
    operation: ClassVar[str] = "rate"
    retry_safe: ClassVar[bool] = False
    user_id: str
    item: Item
    rating: float
    deadline_ms: Optional[float] = None
    api_version: str = API_VERSION


@dataclass(frozen=True)
class RecommendationsRequest:
    operation: ClassVar[str] = "recommendations"
    retry_safe: ClassVar[bool] = True
    user_id: str
    k: int = 10
    category: Optional[str] = None
    deadline_ms: Optional[float] = None
    api_version: str = API_VERSION


@dataclass(frozen=True)
class WeeklyHottestRequest:
    operation: ClassVar[str] = "weekly_hottest"
    retry_safe: ClassVar[bool] = True
    user_id: str
    k: int = 10
    category: Optional[str] = None
    deadline_ms: Optional[float] = None
    api_version: str = API_VERSION


@dataclass(frozen=True)
class CrossSellRequest:
    operation: ClassVar[str] = "cross_sell"
    retry_safe: ClassVar[bool] = True
    user_id: str
    k: int = 5
    category: Optional[str] = None
    basket: Optional[Tuple[str, ...]] = None
    deadline_ms: Optional[float] = None
    api_version: str = API_VERSION


@dataclass(frozen=True)
class FindSimilarRequest:
    operation: ClassVar[str] = "find_similar"
    retry_safe: ClassVar[bool] = True
    user_id: str
    category: Optional[str] = None
    deadline_ms: Optional[float] = None
    api_version: str = API_VERSION


@dataclass(frozen=True)
class AdminStatsRequest:
    operation: ClassVar[str] = "admin_stats"
    retry_safe: ClassVar[bool] = True
    deadline_ms: Optional[float] = None
    api_version: str = API_VERSION


@dataclass(frozen=True)
class HandshakeRequest:
    """Run the trade-handshake protocol against a marketplace broker.

    The probe surface of the adversarial subsystem: with ``tamper=None``
    it performs the honest init → nonce echo → finalize flow and returns
    a :class:`HandshakeResult`; with one of the
    :data:`~repro.adversarial.handshake.TAMPER_MODES` it deliberately
    violates the protocol in exactly that way, and the envelope carries
    the typed rejection (``forged-nonce``, ``replayed-offer``,
    ``double-finalize``, ``stale-credential``).  Requires a platform
    built with ``handshake_trades``; like the trade writes it is not
    retry-safe (a handshake consumes nonces server-side).
    """

    operation: ClassVar[str] = "handshake"
    retry_safe: ClassVar[bool] = False
    user_id: str
    marketplace: Optional[str] = None
    tamper: Optional[str] = None
    deadline_ms: Optional[float] = None
    api_version: str = API_VERSION


# ---------------------------------------------------------------------------
# Result payloads
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RegistrationResult:
    user_id: str
    server: str


@dataclass(frozen=True)
class LoginResult:
    user_id: str
    bra_id: str
    server: str


@dataclass(frozen=True)
class LogoutResult:
    user_id: str


@dataclass(frozen=True)
class QueryHits:
    """Figure 4.2 query results plus the recommendations generated alongside."""

    hits: Tuple[QueryResult, ...]
    recommendations: Tuple[Recommendation, ...] = ()

    def __len__(self) -> int:
        return len(self.hits)


@dataclass(frozen=True)
class TradeOutcome:
    """Figure 4.3 buy / auction / negotiation outcome.

    ``succeeded`` is a *domain* outcome (a lost auction is a successful API
    call whose trade failed); envelope-level failure is reported through the
    envelope's status/error instead.
    """

    succeeded: bool
    transaction: Optional[TransactionRecord]
    outcome: Dict[str, Any] = field(default_factory=dict)
    recommendations: Tuple[Recommendation, ...] = ()

    @property
    def price_paid(self) -> Optional[float]:
        return self.transaction.price if self.transaction else None


@dataclass(frozen=True)
class RatingResult:
    user_id: str
    item_id: str
    rating: float


@dataclass(frozen=True)
class RecommendationList:
    recommendations: Tuple[Recommendation, ...] = ()

    def __len__(self) -> int:
        return len(self.recommendations)


@dataclass(frozen=True)
class SimilarConsumers:
    """Fleet-wide (or single-server) similar-consumer ranking."""

    neighbors: Tuple[Tuple[str, float], ...] = ()

    def __len__(self) -> int:
        return len(self.neighbors)


@dataclass(frozen=True)
class HandshakeResult:
    """A finalized handshake: the transcript's identifying facts."""

    handshake_id: str
    marketplace: str
    buyer: str
    verified: bool = True


@dataclass(frozen=True)
class PlatformStats:
    stats: Dict[str, Any] = field(default_factory=dict)
