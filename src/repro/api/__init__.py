"""repro.api — the versioned gateway API over the e-commerce platform.

The single blessed entry point for client operations is
:class:`~repro.api.gateway.PlatformGateway`, obtained from a built platform
via ``build_platform(...).gateway()``.  Every operation returns the uniform
:class:`~repro.api.envelope.ApiResponse` envelope (typed result payload,
status taxonomy, structured error, simulated-latency timing and
shard/replica provenance) after flowing through the middleware chain in
:mod:`repro.api.middleware` (metrics → admission control → deadline →
retry → queueing).  See ``docs/ARCHITECTURE.md`` ("API layer") for envelope
semantics, middleware ordering and the versioning policy.

For overlapping load, ``gateway.submit`` returns an
:class:`~repro.api.concurrency.ApiFuture` and the
:class:`~repro.api.concurrency.SessionScheduler` interleaves thousands of
open sessions by virtual arrival time — see :mod:`repro.api.concurrency`.
"""

from repro.api.caching import RecommendationEnvelopeCache
from repro.api.concurrency import ApiFuture, ServerQueues, SessionScheduler
from repro.api.envelope import (
    API_VERSION,
    SUPPORTED_VERSIONS,
    ApiError,
    ApiResponse,
    ApiStatus,
    Provenance,
    classify_error,
)
from repro.api.gateway import PlatformGateway
from repro.api.middleware import (
    AdmissionControlMiddleware,
    ApiCall,
    DeadlineMiddleware,
    MetricsMiddleware,
    Middleware,
    QueueingMiddleware,
    RetryMiddleware,
    TokenBucket,
    build_chain,
)
from repro.api.requests import (
    AdminStatsRequest,
    AuctionRequest,
    BuyRequest,
    CrossSellRequest,
    FindSimilarRequest,
    LoginRequest,
    LoginResult,
    LogoutRequest,
    LogoutResult,
    NegotiateRequest,
    PlatformStats,
    QueryHits,
    QueryRequest,
    RateRequest,
    RatingResult,
    RecommendationList,
    RecommendationsRequest,
    RegisterRequest,
    RegistrationResult,
    SimilarConsumers,
    TradeOutcome,
    WeeklyHottestRequest,
)

__all__ = [
    "API_VERSION",
    "SUPPORTED_VERSIONS",
    "ApiStatus",
    "ApiError",
    "ApiResponse",
    "Provenance",
    "classify_error",
    "PlatformGateway",
    "RecommendationEnvelopeCache",
    "ApiFuture",
    "ServerQueues",
    "SessionScheduler",
    "Middleware",
    "MetricsMiddleware",
    "AdmissionControlMiddleware",
    "DeadlineMiddleware",
    "QueueingMiddleware",
    "RetryMiddleware",
    "TokenBucket",
    "ApiCall",
    "build_chain",
    "RegisterRequest",
    "LoginRequest",
    "LogoutRequest",
    "QueryRequest",
    "BuyRequest",
    "AuctionRequest",
    "NegotiateRequest",
    "RateRequest",
    "RecommendationsRequest",
    "WeeklyHottestRequest",
    "CrossSellRequest",
    "FindSimilarRequest",
    "AdminStatsRequest",
    "RegistrationResult",
    "LoginResult",
    "LogoutResult",
    "QueryHits",
    "TradeOutcome",
    "RatingResult",
    "RecommendationList",
    "SimilarConsumers",
    "PlatformStats",
]
