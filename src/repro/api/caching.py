"""Envelope-level caching for gateway ``recommendations`` operations.

The batch-refresh pipeline (:meth:`RecommendationService.batch_refresh`)
already computes every assigned consumer's recommendation list on a
schedule; without this module the gateway throws that work away and
recomputes the same list on every ``recommendations`` request.  The
:class:`RecommendationEnvelopeCache` closes the loop: a request whose
parameters exactly match a batch-refreshed entry is answered from that
entry, stamped ``served_from_cache=True`` in its
:class:`~repro.api.envelope.Provenance`.

Correctness rules (the ones the cache-regression tests pin):

- **Hits must be byte-identical to a fresh computation.**  Three guards
  enforce this: a hit requires ``category is None`` (batch refresh computes
  category-free lists only), requires the entry to have been refreshed at
  exactly the requested ``k``, and requires the entry to still be present —
  :meth:`RecommendationService.enable_batch_invalidation` drops a consumer's
  entry on every write that could change their list (learning updates,
  recorded transactions, observational interactions, wholesale profile
  replacement).
- **Invalidation is armed before the first lookup.**  ``lookup`` arms the
  service's invalidation hooks itself (idempotently), so there is no window
  in which a cache could serve an entry that a write has silently outdated.
- **Default-off is byte-invisible.**  The cache only exists when
  ``PlatformConfig.api_recommendation_cache`` is true; otherwise the gateway
  never constructs one, no hooks are registered, and the request path is
  exactly the pre-cache code.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["RecommendationEnvelopeCache"]


class RecommendationEnvelopeCache:
    """Gateway-side view over per-server batch-refresh caches.

    The cached lists themselves live in each server's
    :class:`~repro.ecommerce.buyer_server.RecommendationService` (they are
    soft state, lost with the server on a crash — exactly the durability
    class the module docstring in ``buyer_server`` promises).  This object
    only decides hit eligibility and keeps gateway-level counters.
    """

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        #: Requests ineligible by shape (a category filter) rather than by
        #: cache contents — kept separate so a hit-rate readout is not
        #: polluted by requests the cache never promises to serve.
        self.bypasses = 0

    def lookup(
        self,
        service,
        user_id: str,
        k: int,
        category: Optional[str],
    ) -> Optional[List]:
        """The cached list for this request, or None to compute fresh.

        ``service`` is the serving server's ``RecommendationService``; its
        write-invalidation hooks are armed here (idempotent) so eligibility
        never outruns invalidation.
        """
        if category is not None:
            self.bypasses += 1
            return None
        service.enable_batch_invalidation()
        cached = service.cached_recommendations(user_id, k=k)
        if cached is None:
            self.misses += 1
            return None
        self.hits += 1
        return cached
