"""Merchandise items shared by the catalogue and the recommenders.

The paper's seller server "integrates and catalogues merchandise"; the
recommendation mechanism compares queried merchandise against profiles built
from categories, sub-categories and descriptive terms.  :class:`Item` carries
exactly the attributes those algorithms need: a category / sub-category pair
matching the profile hierarchy of Figure 4.4 and a bag of descriptive terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import CatalogError

__all__ = ["Item", "ItemCatalogView"]


@dataclass(frozen=True)
class Item:
    """One piece of merchandise.

    Attributes:
        item_id: globally unique identifier.
        name: display name.
        category: main category (matches ``Profile`` categories).
        subcategory: sub-category within the main category.
        terms: descriptive keywords with weights in ``[0, 1]`` used by the
            information-filtering recommender and the profile learner.
        price: list price in arbitrary currency units.
        seller: name of the seller server offering the item.
    """

    item_id: str
    name: str
    category: str
    subcategory: str = ""
    terms: Tuple[Tuple[str, float], ...] = ()
    price: float = 0.0
    seller: str = ""

    def __post_init__(self) -> None:
        if not self.item_id:
            raise CatalogError("item_id must be non-empty")
        if self.price < 0:
            raise CatalogError(f"item {self.item_id!r} has a negative price")
        for term, weight in self.terms:
            if not term:
                raise CatalogError(f"item {self.item_id!r} has an empty term")
            if weight < 0:
                raise CatalogError(
                    f"item {self.item_id!r} term {term!r} has a negative weight"
                )

    @classmethod
    def build(
        cls,
        item_id: str,
        name: str,
        category: str,
        subcategory: str = "",
        terms: Optional[Dict[str, float]] = None,
        price: float = 0.0,
        seller: str = "",
    ) -> "Item":
        """Convenience constructor accepting terms as a dict."""
        term_tuple = tuple(sorted((terms or {}).items()))
        return cls(
            item_id=item_id,
            name=name,
            category=category,
            subcategory=subcategory,
            terms=term_tuple,
            price=price,
            seller=seller,
        )

    @property
    def term_weights(self) -> Dict[str, float]:
        """Terms as a mutable dict copy."""
        return dict(self.terms)

    def matches_keyword(self, keyword: str) -> bool:
        """Whether a free-text keyword matches this item.

        The marketplace query service uses this for keyword search: a match on
        the name, category, sub-category or any descriptive term.
        """
        needle = keyword.lower().strip()
        if not needle:
            return False
        if needle in self.name.lower():
            return True
        if needle == self.category.lower() or needle == self.subcategory.lower():
            return True
        return any(needle == term.lower() for term, _ in self.terms)


class ItemCatalogView:
    """A read-only indexed view over a collection of items.

    Recommenders receive one of these rather than a live marketplace
    catalogue, so the core package stays independent of the e-commerce layer.
    """

    def __init__(self, items: Iterable[Item]) -> None:
        self._items: Dict[str, Item] = {}
        self._by_category: Dict[str, List[str]] = {}
        for item in items:
            self.add(item)

    def add(self, item: Item) -> None:
        if item.item_id in self._items:
            raise CatalogError(f"duplicate item id {item.item_id!r} in catalogue view")
        self._items[item.item_id] = item
        self._by_category.setdefault(item.category, []).append(item.item_id)

    def get(self, item_id: str) -> Item:
        if item_id not in self._items:
            raise CatalogError(f"unknown item id {item_id!r}")
        return self._items[item_id]

    def __contains__(self, item_id: str) -> bool:
        return item_id in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items.values())

    @property
    def item_ids(self) -> List[str]:
        return sorted(self._items)

    def in_category(self, category: str) -> List[Item]:
        return [self._items[item_id] for item_id in self._by_category.get(category, [])]

    def categories(self) -> List[str]:
        return sorted(self._by_category)

    def search(self, keyword: str) -> List[Item]:
        """Keyword search over all items (name, category or term match)."""
        return [item for item in self._items.values() if item.matches_keyword(keyword)]
