"""Swappable scoring kernels for the neighbor index — score-identical by construction.

:class:`~repro.core.neighbors.ProfileNeighborIndex` historically scored one
candidate at a time with pure-Python dict loops
(:func:`repro.core.similarity.cosine_similarity_cached`).  This module factors
that inner loop behind a single :class:`ScoringKernel` interface with three
backends:

- ``dict`` — the reference backend: the exact dict loops, untouched.  Zero
  per-entry state, always available, the semantics every other backend must
  reproduce bit for bit.
- ``array`` — always-available stdlib backend: each entry's sparse vector is
  held as a parallel ``array('q')`` slot / ``array('d')`` weight pair (read
  through memoryviews), and the candidate-side dot becomes
  ``sum(map(mul, weights, map(dense.__getitem__, slots)))`` against a dense
  target list — the same products in the same order as the dict loop, so the
  result is the same IEEE-754 double.  Compact rows, modest constant-factor
  gains, no third-party dependency.
- ``numpy`` — optional batch backend: entries are packed into CSR/CSC-style
  contiguous arrays and a whole candidate block is scored per query.  Exact
  dot products come from ``np.bincount(rows, weights=products)``, which
  accumulates its weights *sequentially in input order* in one C pass —
  with rows laid out in entry order that is precisely the dict loop's
  left-to-right ``sum``, so every non-zero dot is bit-identical (an
  exactly-zero dot can at most flip its zero sign, which the score clamp
  provably erases — see :meth:`NumpyKernel._side_cosines`).  The score
  formula, clamp and Hölder early-termination bounds are vectorized with
  elementwise IEEE operations identical to the scalar expressions.

Bit-identity, not just approximate equality, is the contract: the property
suite in ``tests/property/test_scoring_kernel.py`` drives all three backends
over adversarial profiles (zero norms, empty term sets, single ratings,
disjoint categories) and asserts ``==`` on every score.

Backend selection: ``resolve_backend("auto")`` prefers numpy when importable
and not disabled; setting the ``REPRO_NO_NUMPY`` environment variable forces
the stdlib path (CI runs the whole tier-1 suite both ways).
"""

from __future__ import annotations

import os
from array import array
from operator import mul
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.similarity import cosine_similarity_cached as _cached_cosine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.neighbors import _ProfileEntry

__all__ = [
    "KERNEL_BACKENDS",
    "ScoringKernel",
    "TargetState",
    "BlockScores",
    "create_kernel",
    "numpy_available",
    "resolve_backend",
]

#: The closed set of valid kernel backend names ("auto" resolves into these).
KERNEL_BACKENDS = ("dict", "array", "numpy")

_numpy_module = None
_numpy_probed = False


def numpy_available() -> bool:
    """Whether the numpy backend may be used right now.

    The ``REPRO_NO_NUMPY`` environment variable wins over importability so CI
    can exercise the stdlib-only code path on machines where numpy cannot be
    uninstalled.
    """
    if os.environ.get("REPRO_NO_NUMPY"):
        return False
    global _numpy_module, _numpy_probed
    if not _numpy_probed:
        try:
            import numpy  # noqa: F401 - probe only

            _numpy_module = numpy
        except ImportError:  # pragma: no cover - numpy ships in the image
            _numpy_module = None
        _numpy_probed = True
    return _numpy_module is not None


def _numpy():
    if not numpy_available():  # pragma: no cover - guarded by resolve_backend
        raise RuntimeError("numpy backend requested but numpy is unavailable")
    return _numpy_module


def resolve_backend(backend: str) -> str:
    """Validate ``backend`` and resolve ``"auto"`` to a concrete name.

    ``auto`` prefers numpy when available and falls back to the stdlib
    ``array`` kernel; asking for ``numpy`` explicitly when it is unavailable
    is an error rather than a silent downgrade.
    """
    if backend == "auto":
        return "numpy" if numpy_available() else "array"
    if backend not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown scoring backend {backend!r}; "
            f"expected one of {KERNEL_BACKENDS + ('auto',)}"
        )
    if backend == "numpy" and not numpy_available():
        raise ValueError(
            "scoring backend 'numpy' requested but numpy is unavailable "
            "(is REPRO_NO_NUMPY set?)"
        )
    return backend


def create_kernel(backend: str) -> "ScoringKernel":
    """Instantiate the kernel for a resolved backend name."""
    backend = resolve_backend(backend)
    if backend == "dict":
        return DictKernel()
    if backend == "array":
        return ArrayKernel()
    return NumpyKernel()


class TargetState:
    """Per-query prepared view of the target profile's vectors.

    Built once by :meth:`ScoringKernel.prepare_target` and threaded through
    every per-candidate scoring call of that query; backends attach whatever
    dense/packed representation they need.
    """

    __slots__ = (
        "prefs",
        "pref_norm",
        "terms",
        "term_norm",
        "term_l1",
        "term_max",
        "pref_dense",
        "term_dense",
        "pref_items",
        "term_items",
    )

    def __init__(
        self,
        prefs: Dict[str, float],
        pref_norm: float,
        terms: Dict[str, float],
        term_norm: float,
        term_l1: float = 0.0,
        term_max: float = 0.0,
    ) -> None:
        self.prefs = prefs
        self.pref_norm = pref_norm
        self.terms = terms
        self.term_norm = term_norm
        self.term_l1 = term_l1
        self.term_max = term_max
        self.pref_dense = None
        self.term_dense = None
        self.pref_items = None
        self.term_items = None


class ScoringKernel:
    """Backend interface the neighbor index scores candidates through.

    Scalar backends (``dict``, ``array``) expose :meth:`pref_part` /
    :meth:`term_part` and keep the index's lazy per-candidate loop (so
    early-termination still skips term dots entirely).  Block backends
    (``numpy``, ``vectorized = True``) additionally expose
    :meth:`score_block`, scoring every indexed entry in a handful of
    vectorized passes.
    """

    name: str = "abstract"
    vectorized: bool = False

    # -- entry lifecycle (driven by ProfileNeighborIndex) ---------------------

    def reset(self) -> None:
        """Drop all per-entry state (index rebuilt from scratch)."""

    def entry_changed(self, entry: "_ProfileEntry") -> None:
        """An entry was (re)indexed; refresh backend state for it."""

    def entry_removed(self, user_id: str) -> None:
        """An entry was dropped from the index."""

    # -- scoring --------------------------------------------------------------

    def prepare_target(
        self,
        prefs: Dict[str, float],
        pref_norm: float,
        terms: Dict[str, float],
        term_norm: float,
        term_l1: float = 0.0,
        term_max: float = 0.0,
    ) -> TargetState:
        return TargetState(prefs, pref_norm, terms, term_norm, term_l1, term_max)

    def pref_part(self, tq: TargetState, entry: "_ProfileEntry") -> float:
        raise NotImplementedError

    def term_part(self, tq: TargetState, entry: "_ProfileEntry") -> float:
        raise NotImplementedError

    def score_block(
        self,
        entries: Dict[str, "_ProfileEntry"],
        tq: TargetState,
        preference_weight: float,
        term_weight: float,
        total_weight: float,
        want_bounds: bool,
        tight_term_bound: bool,
    ) -> "BlockScores":
        raise NotImplementedError(f"{self.name} kernel does not score blocks")


class DictKernel(ScoringKernel):
    """Reference backend: the original dict loops, verbatim."""

    name = "dict"

    def pref_part(self, tq: TargetState, entry: "_ProfileEntry") -> float:
        return _cached_cosine(tq.prefs, tq.pref_norm, entry.prefs, entry.pref_norm)

    def term_part(self, tq: TargetState, entry: "_ProfileEntry") -> float:
        return _cached_cosine(tq.terms, tq.term_norm, entry.terms, entry.term_norm)


class _ArrayRow:
    """One entry's sparse vectors as parallel stdlib arrays.

    ``slots`` are vocabulary positions (``array('q')``), ``weights`` the
    matching values (``array('d')``), both in the entry dict's insertion
    order so a product-by-product walk reproduces the dict loop's summation
    order exactly.  Reads go through memoryviews — zero-copy, and ``'d'``
    views yield native floats.
    """

    __slots__ = ("pref_slots", "pref_weights", "term_slots", "term_weights")

    def __init__(
        self,
        pref_slots: array,
        pref_weights: array,
        term_slots: array,
        term_weights: array,
    ) -> None:
        self.pref_slots = memoryview(pref_slots)
        self.pref_weights = memoryview(pref_weights)
        self.term_slots = memoryview(term_slots)
        self.term_weights = memoryview(term_weights)


class ArrayKernel(ScoringKernel):
    """Stdlib ``array``/memoryview backend — always available.

    A shared, monotonically growing vocabulary maps category / term names to
    integer slots; each entry keeps slot/weight arrays per side.  At query
    time the target is densified into a plain list indexed by slot, and the
    candidate-side dot is ``sum(map(mul, weights, map(dense.__getitem__,
    slots)))`` — the same products in the same left-to-right order as the
    dict loop, hence the same bits.  When the target side is the shorter one
    the reference dict loop is used directly (it iterates the target's own
    items, which no per-entry packing can accelerate).
    """

    name = "array"

    def __init__(self) -> None:
        self._pref_slots: Dict[str, int] = {}
        self._term_slots: Dict[str, int] = {}
        self._rows: Dict[str, _ArrayRow] = {}

    def reset(self) -> None:
        self._pref_slots.clear()
        self._term_slots.clear()
        self._rows.clear()

    def _pack(self, vector: Dict[str, float], slots: Dict[str, int]) -> Tuple[array, array]:
        for key in vector:
            if key not in slots:
                slots[key] = len(slots)
        ids = array("q", (slots[key] for key in vector))
        weights = array("d", vector.values())
        return ids, weights

    def entry_changed(self, entry: "_ProfileEntry") -> None:
        pref_ids, pref_weights = self._pack(entry.prefs, self._pref_slots)
        term_ids, term_weights = self._pack(entry.terms, self._term_slots)
        self._rows[entry.user_id] = _ArrayRow(
            pref_ids, pref_weights, term_ids, term_weights
        )

    def entry_removed(self, user_id: str) -> None:
        self._rows.pop(user_id, None)

    def prepare_target(
        self,
        prefs: Dict[str, float],
        pref_norm: float,
        terms: Dict[str, float],
        term_norm: float,
        term_l1: float = 0.0,
        term_max: float = 0.0,
    ) -> TargetState:
        tq = TargetState(prefs, pref_norm, terms, term_norm, term_l1, term_max)
        tq.pref_dense = self._densify(prefs, self._pref_slots)
        tq.term_dense = self._densify(terms, self._term_slots)
        return tq

    @staticmethod
    def _densify(vector: Dict[str, float], slots: Dict[str, int]) -> List[float]:
        dense = [0.0] * len(slots)
        for key, value in vector.items():
            slot = slots.get(key)
            if slot is not None:
                dense[slot] = value
        return dense

    @staticmethod
    def _side_cosine(
        target: Dict[str, float],
        target_norm: float,
        target_dense: List[float],
        entry_vector: Dict[str, float],
        entry_norm: float,
        slots,
        weights,
    ) -> float:
        # Mirrors cosine_similarity_cached guard for guard: empty-side check
        # first, then iterate the smaller side, then the zero-norm check.
        if not target or not entry_vector:
            return 0.0
        if len(target) > len(entry_vector):
            # Candidate side is smaller: walk its packed arrays against the
            # dense target.  Absent slots read 0.0, exactly like
            # ``right.get(key, 0.0)`` in the reference loop.
            if target_norm == 0.0 or entry_norm == 0.0:
                return 0.0
            dot = sum(map(mul, weights, map(target_dense.__getitem__, slots)))
        else:
            if target_norm == 0.0 or entry_norm == 0.0:
                return 0.0
            dot = sum(
                value * entry_vector.get(key, 0.0) for key, value in target.items()
            )
        return dot / (target_norm * entry_norm)

    def pref_part(self, tq: TargetState, entry: "_ProfileEntry") -> float:
        row = self._rows[entry.user_id]
        return self._side_cosine(
            tq.prefs,
            tq.pref_norm,
            tq.pref_dense,
            entry.prefs,
            entry.pref_norm,
            row.pref_slots,
            row.pref_weights,
        )

    def term_part(self, tq: TargetState, entry: "_ProfileEntry") -> float:
        row = self._rows[entry.user_id]
        return self._side_cosine(
            tq.terms,
            tq.term_norm,
            tq.term_dense,
            entry.terms,
            entry.term_norm,
            row.term_slots,
            row.term_weights,
        )


class BlockScores:
    """Vectorized scores (and optional early-termination bounds) for a block.

    Row order matches the index's entry iteration order.  ``scores`` /
    ``bounds`` are materialized to plain float lists lazily; ``pairs_at_least``
    filters survivors without a per-candidate Python loop.
    """

    def __init__(self, np_module, user_ids, scores, bounds, row_of) -> None:
        self._np = np_module
        self.user_ids = user_ids
        self._scores = scores
        self._bounds = bounds
        self.row_of = row_of
        self._score_list: Optional[List[float]] = None
        self._bound_list: Optional[List[float]] = None

    @property
    def scores(self) -> List[float]:
        if self._score_list is None:
            self._score_list = self._scores.tolist()
        return self._score_list

    @property
    def bounds(self) -> Optional[List[float]]:
        if self._bounds is None:
            return None
        if self._bound_list is None:
            self._bound_list = self._bounds.tolist()
        return self._bound_list

    def pairs_at_least(
        self, minimum: float, exclude_user: str
    ) -> List[Tuple[str, float]]:
        """``(user_id, score)`` for every row with ``score >= minimum``."""
        np = self._np
        mask = self._scores >= minimum
        excluded = self.row_of.get(exclude_user)
        if excluded is not None:
            mask[excluded] = False
        rows = np.nonzero(mask)[0].tolist()
        score_list = self.scores
        user_ids = self.user_ids
        return [(user_ids[row], score_list[row]) for row in rows]


class _PackedSide:
    """CSR + CSC packing of one vector side (prefs or terms) of all entries."""

    __slots__ = (
        "slot_count",
        "lengths",
        "row_of_value",
        "csr_rows",
        "csr_slots",
        "csr_weights",
        "csc_rows",
        "csc_weights",
        "slot_starts",
        "slot_stops",
        "norms",
    )


class NumpyKernel(ScoringKernel):
    """Optional numpy backend: scores the whole entry block per query.

    Exactness argument, in short: ``np.bincount(rows, weights=w)`` adds the
    weights to its output bins one input element at a time, in input order.
    Packing every entry's products contiguously (CSR order) therefore yields,
    per row, the identical left-to-right float summation the dict loop
    performs — the same intermediate roundings, the same final bits.  The
    target-side direction (dict loop iterates the *target's* items) is
    reproduced by concatenating per-slot CSC segments in target-item order.
    The only representable difference is the sign of an exactly-zero dot
    (the packed paths drop ``x * 0.0`` products, which can only flip
    ``-0.0``/``+0.0``) — unobservable downstream; see
    :meth:`_side_cosines` for the argument.
    """

    name = "numpy"
    vectorized = True

    # Scalar fallbacks: the neighbor index only takes the block path when a
    # candidate set covers enough of the entries to be worth a full pass;
    # small category-filtered sets score one candidate at a time through the
    # reference dict loops — trivially score-identical.
    def pref_part(self, tq: TargetState, entry: "_ProfileEntry") -> float:
        return _cached_cosine(tq.prefs, tq.pref_norm, entry.prefs, entry.pref_norm)

    def term_part(self, tq: TargetState, entry: "_ProfileEntry") -> float:
        return _cached_cosine(tq.terms, tq.term_norm, entry.terms, entry.term_norm)

    def __init__(self) -> None:
        self._pref_slots: Dict[str, int] = {}
        self._term_slots: Dict[str, int] = {}
        self._row_arrays: Dict[str, Tuple] = {}
        self._dirty = True
        self._user_ids: List[str] = []
        self._entry_list: List = []
        self._row_of: Dict[str, int] = {}
        self._pref: Optional[_PackedSide] = None
        self._term: Optional[_PackedSide] = None
        self._term_l1 = None
        self._term_max = None
        #: Number of full block repacks performed (diagnostics / tests).
        self.repacks = 0

    def reset(self) -> None:
        self._pref_slots.clear()
        self._term_slots.clear()
        self._row_arrays.clear()
        self._dirty = True

    def _pack_entry(self, vector: Dict[str, float], slots: Dict[str, int]):
        np = _numpy()
        for key in vector:
            if key not in slots:
                slots[key] = len(slots)
        ids = np.fromiter(
            (slots[key] for key in vector), dtype=np.int64, count=len(vector)
        )
        weights = np.fromiter(vector.values(), dtype=np.float64, count=len(vector))
        return ids, weights

    def entry_changed(self, entry: "_ProfileEntry") -> None:
        self._row_arrays[entry.user_id] = (
            self._pack_entry(entry.prefs, self._pref_slots),
            self._pack_entry(entry.terms, self._term_slots),
        )
        self._dirty = True

    def entry_removed(self, user_id: str) -> None:
        if self._row_arrays.pop(user_id, None) is not None:
            self._dirty = True

    # -- block packing --------------------------------------------------------

    def _pack_side(self, per_row, norms, slot_count) -> _PackedSide:
        np = _numpy()
        side = _PackedSide()
        side.slot_count = slot_count
        lengths = np.fromiter(
            (len(ids) for ids, _ in per_row), dtype=np.int64, count=len(per_row)
        )
        side.lengths = lengths
        side.norms = np.asarray(norms, dtype=np.float64)
        if len(per_row) == 0 or int(lengths.sum()) == 0:
            side.csr_rows = np.zeros(0, dtype=np.int64)
            side.csr_slots = np.zeros(0, dtype=np.int64)
            side.csr_weights = np.zeros(0)
            side.csc_rows = np.zeros(0, dtype=np.int64)
            side.csc_weights = np.zeros(0)
            side.slot_starts = np.zeros(slot_count, dtype=np.int64)
            side.slot_stops = np.zeros(slot_count, dtype=np.int64)
            return side
        side.csr_slots = np.concatenate([ids for ids, _ in per_row])
        side.csr_weights = np.concatenate([weights for _, weights in per_row])
        side.csr_rows = np.repeat(np.arange(len(per_row), dtype=np.int64), lengths)
        order = np.argsort(side.csr_slots, kind="stable")
        sorted_slots = side.csr_slots[order]
        side.csc_rows = side.csr_rows[order]
        side.csc_weights = side.csr_weights[order]
        all_slots = np.arange(slot_count, dtype=np.int64)
        side.slot_starts = np.searchsorted(sorted_slots, all_slots, side="left")
        side.slot_stops = np.searchsorted(sorted_slots, all_slots, side="right")
        return side

    def _repack(self, entries: Dict[str, "_ProfileEntry"]) -> None:
        np = _numpy()
        self._user_ids = list(entries)
        self._entry_list = [entries[user_id] for user_id in self._user_ids]
        self._row_of = {user_id: row for row, user_id in enumerate(self._user_ids)}
        pref_rows = [self._row_arrays[user_id][0] for user_id in self._user_ids]
        term_rows = [self._row_arrays[user_id][1] for user_id in self._user_ids]
        self._pref = self._pack_side(
            pref_rows,
            [entry.pref_norm for entry in self._entry_list],
            len(self._pref_slots),
        )
        self._term = self._pack_side(
            term_rows,
            [entry.term_norm for entry in self._entry_list],
            len(self._term_slots),
        )
        self._term_l1 = np.fromiter(
            (entry.term_l1 for entry in self._entry_list),
            dtype=np.float64,
            count=len(self._entry_list),
        )
        self._term_max = np.fromiter(
            (entry.term_max for entry in self._entry_list),
            dtype=np.float64,
            count=len(self._entry_list),
        )
        self._dirty = False
        self.repacks += 1

    # -- vectorized cosines ---------------------------------------------------

    def _side_cosines(
        self,
        side: _PackedSide,
        target: Dict[str, float],
        target_norm: float,
        slots: Dict[str, int],
    ):
        """Exact cosines of the target against every row of ``side``.

        Every non-zero dot is bit-identical to the scalar loop's.  A dot that
        is exactly zero may carry the opposite zero sign (the packed paths
        drop ``x * 0.0`` products a scalar loop would have added), which is
        the *only* representable difference — and it is unobservable: both
        consumers of these cosines are sign-of-zero invariant.  The score
        formula ends in ``max(0.0, min(1.0, s))`` which maps ``-0.0`` to
        ``+0.0`` on both paths, and adding ``±0.0`` to the other weighted
        component either leaves a non-zero value untouched or lands in the
        same clamp.  The early-termination bound adds a non-negative
        ``term_bound`` to the weighted preference cosine, with the same
        analysis.  The property suite asserts the end-to-end bit-identity.
        """
        np = _numpy()
        rows = len(side.lengths)
        target_len = len(target)
        if target_len == 0 or target_norm == 0.0:
            # Reference loop returns 0.0 for every pair (empty side or zero
            # norm), regardless of the entry.
            return np.zeros(rows)
        target_slots = [slots.get(key, -1) for key in target]
        target_values = list(target.values())
        dense = np.zeros(side.slot_count)
        for slot, value in zip(target_slots, target_values):
            if slot >= 0:
                dense[slot] = value
        # Candidate-side dots (entry shorter than target): CSR-ordered
        # products, summed sequentially per row by bincount.
        if len(side.csr_rows):
            candidate_dots = np.bincount(
                side.csr_rows,
                weights=side.csr_weights * dense[side.csr_slots],
                minlength=rows,
            )
        else:
            candidate_dots = np.zeros(rows)
        # Target-side dots (target is the shorter side): per-slot CSC
        # segments concatenated in target-item order reproduce the loop
        # ``for key, value in target.items(): value * entry.get(key, 0.0)``.
        segment_rows: List = []
        segment_products: List = []
        for slot, value in zip(target_slots, target_values):
            if slot < 0:
                continue
            start, stop = side.slot_starts[slot], side.slot_stops[slot]
            if start == stop:
                continue
            segment_rows.append(side.csc_rows[start:stop])
            segment_products.append(value * side.csc_weights[start:stop])
        if segment_rows:
            target_dots = np.bincount(
                np.concatenate(segment_rows),
                weights=np.concatenate(segment_products),
                minlength=rows,
            )
        else:
            target_dots = np.zeros(rows)
        dots = np.where(target_len > side.lengths, candidate_dots, target_dots)
        with np.errstate(divide="ignore", invalid="ignore"):
            cosines = dots / (target_norm * side.norms)
        return np.where((side.lengths == 0) | (side.norms == 0.0), 0.0, cosines)

    def score_block(
        self,
        entries: Dict[str, "_ProfileEntry"],
        tq: TargetState,
        preference_weight: float,
        term_weight: float,
        total_weight: float,
        want_bounds: bool,
        tight_term_bound: bool,
    ) -> BlockScores:
        np = _numpy()
        if self._dirty or len(self._user_ids) != len(entries):
            self._repack(entries)
        pref_cos = self._side_cosines(
            self._pref, tq.prefs, tq.pref_norm, self._pref_slots
        )
        term_cos = self._side_cosines(
            self._term, tq.terms, tq.term_norm, self._term_slots
        )
        scores = (preference_weight * pref_cos + term_weight * term_cos) / total_weight
        # max(0.0, min(1.0, s)) — then "+ 0.0" maps a clamped -0.0 to +0.0,
        # matching Python's max(0.0, -0.0) == 0.0 while leaving every other
        # value bit-identical.
        scores = np.maximum(0.0, np.minimum(1.0, scores)) + 0.0
        bounds = None
        if want_bounds:
            rows = len(self._entry_list)
            if tq.term_norm > 0.0:
                if tight_term_bound:
                    holder = np.minimum(
                        tq.term_max * self._term_l1, tq.term_l1 * self._term_max
                    )
                    with np.errstate(divide="ignore", invalid="ignore"):
                        tight = holder / (tq.term_norm * self._term.norms)
                    term_bound = np.where(
                        self._term.norms > 0.0,
                        np.minimum(1.0, tight * (1.0 + 1e-9)),
                        0.0,
                    )
                else:
                    term_bound = np.where(self._term.norms > 0.0, 1.0, 0.0)
            else:
                term_bound = np.zeros(rows)
            bounds = (
                preference_weight * pref_cos + term_weight * term_bound
            ) / total_weight
        return BlockScores(np, self._user_ids, scores, bounds, self._row_of)
