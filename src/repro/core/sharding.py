"""Sharded neighbor index: partitioned similar-user search with exact merge.

The paper's buyer agent servers are a fleet — each server hosts a partition of
the consumer community and answers similar-user queries over its own
consumers (§3.2).  PR 1's :class:`~repro.core.neighbors.ProfileNeighborIndex`
is one monolithic index; this module partitions it:

- a :class:`ShardRouter` deterministically assigns every consumer to exactly
  one shard, either by **consumer hash** (CRC32 of the user id — stable
  across processes, unlike ``hash(str)``) or **by category** (the profile's
  top preference category, so consumers with the same dominant taste are
  co-located and category-filtered queries concentrate on few shards);
- a :class:`ShardedNeighborIndex` owns one independent
  :class:`ProfileNeighborIndex` per shard, each with the Cauchy-Schwarz
  norm-bound early termination enabled, and wires its own
  :class:`~repro.core.profile_learning.ProfileLearner` hook that invalidates
  — and when routing demands it, **migrates** — exactly the consumer whose
  profile changed;
- :func:`merge_topk` folds per-shard ranked lists back into the global
  ranking.

**Why the merge is exact.**  Every consumer lives in exactly one shard, and a
candidate's score depends only on the target and that candidate — never on
other candidates.  A member of the global top-k is beaten by at most k-1
candidates globally, hence by at most k-1 candidates within its own shard, so
it appears in its shard's top-k list.  Concatenating the per-shard top-k
lists therefore contains the global top-k, and re-sorting with the same
``(-score, user_id)`` key and trimming to k reproduces the single-index (and
brute-force) result byte for byte — the property suite in
``tests/property/test_sharding.py`` pins this down across shard counts and
both routing strategies.

**Replication semantics.**  Shard membership here is *derived* state: every
indexed profile is owned by exactly one durable store (a
:class:`~repro.ecommerce.databases.UserDB`), and the index reconciles against
it via providers, version stamps and learner hooks.  Nothing in this module
is itself replicated or durable — after a crash an index is rebuilt from
whichever UserDB (primary or replica-restored, see
:mod:`repro.ecommerce.replication`) survives, and because scores depend only
on profile contents the rebuilt index answers byte-identically.  The
*single-owner* invariant is what keeps :func:`merge_topk` exact across
failovers: a consumer drained to a new server disappears from the old
shard's provider before appearing in the new one, so no fan-out ever scores
them twice.  During a degraded fan-out (a shard unreachable mid-query) the
merge runs over the responses that arrived — ``None`` entries are skipped,
and the caller reports the gap instead of raising.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SimilarityError
from repro.core.neighbors import ProfileNeighborIndex
from repro.core.profile import Profile
from repro.core.profile_learning import FeedbackEvent
from repro.core.scoring import resolve_backend
from repro.core.similarity import SimilarityConfig

__all__ = [
    "ROUTING_STRATEGIES",
    "ShardRouter",
    "ShardedNeighborIndex",
    "merge_topk",
    "find_similar_users_sharded",
]

ProfilesProvider = Callable[[], Iterable[Profile]]

#: Supported routing strategies.
ROUTING_STRATEGIES = ("hash", "category")


def _stable_hash(text: str) -> int:
    """Deterministic across processes (``hash(str)`` is salted per run)."""
    return zlib.crc32(text.encode("utf-8"))


class ShardRouter:
    """Assigns consumers to shards deterministically.

    ``hash`` routing spreads consumers uniformly by user id and never moves a
    consumer once placed.  ``category`` routing co-locates consumers whose
    *top preference category* (highest scalar preference, ties alphabetical —
    the order :meth:`Profile.top_categories` uses) hashes to the same shard;
    profiles with no categories at all fall back to hash routing, and a
    consumer whose dominant category changes under learning migrates shards.
    """

    def __init__(self, num_shards: int, strategy: str = "hash") -> None:
        if num_shards <= 0:
            raise SimilarityError(f"num_shards must be positive, got {num_shards}")
        if strategy not in ROUTING_STRATEGIES:
            raise SimilarityError(
                f"unknown routing strategy {strategy!r}; expected one of "
                f"{ROUTING_STRATEGIES}"
            )
        self.num_shards = num_shards
        self.strategy = strategy

    def shard_for_user(self, user_id: str) -> int:
        """Hash placement by user id (also the no-profile fallback)."""
        return _stable_hash(user_id) % self.num_shards

    def shard_for(self, profile: Profile) -> int:
        """The shard ``profile`` belongs to under this router's strategy."""
        if self.strategy == "category":
            top = profile.top_categories(1)
            if top:
                return _stable_hash(top[0][0]) % self.num_shards
            # No category preferences yet (fresh registration): fall back to
            # hash placement rather than crash; the consumer migrates to its
            # category shard once learning gives it a dominant category.
        return self.shard_for_user(profile.user_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardRouter(shards={self.num_shards}, strategy={self.strategy!r})"


def merge_topk(
    ranked_lists: Sequence[Optional[List[Tuple[str, float]]]],
    top_k: int,
) -> List[Tuple[str, float]]:
    """Fold per-shard ranked ``(user_id, score)`` lists into the global top-k.

    Uses the exact sort key of the single-index and brute-force paths
    (score descending, user id ascending), so as long as each input list is
    its shard's top-k, the result is identical to ranking all consumers in
    one index.  The ``(-score, user_id)`` key is a strict total order over
    distinct consumers, so equal-score candidates order deterministically by
    user id **regardless of shard count or fan-out arrival order** — the
    merge never leans on the enumeration order of the input lists.

    Duplicate user ids across lists are collapsed to their best score before
    ranking.  Disjointness is the steady-state single-owner invariant, but a
    degraded fan-out can transiently break it: a stale replica answering for
    an unreachable shard may still contain a consumer who migrated away (or
    was drained to a survivor) before the crash, and scoring them twice must
    not push a genuine neighbour out of the top-k.

    ``None`` entries — shards that timed out or were unreachable during a
    fleet fan-out — are tolerated and skipped, so a degraded query merges
    what it has instead of raising; callers report the gap via
    :class:`~repro.ecommerce.buyer_server.FleetQueryResult`.
    """
    best: Dict[str, float] = {}
    for ranked in ranked_lists:
        if ranked is None:
            continue
        for user_id, score in ranked:
            current = best.get(user_id)
            if current is None or score > current:
                best[user_id] = score
    merged = sorted(best.items(), key=lambda pair: (-pair[1], pair[0]))
    return merged[:top_k]


class ShardedNeighborIndex:
    """N independent :class:`ProfileNeighborIndex` shards behind one facade.

    The facade mirrors the single index's API (``build``/``add``/``remove``/
    ``attach_to``/``sync``/``find_similar``) so it drops into
    :class:`~repro.core.hybrid.AgentHybridRecommender` and
    :class:`~repro.ecommerce.buyer_server.RecommendationService` unchanged.
    Membership is owned here: shards are built *without* providers and the
    facade reconciles registrations, removals and — under category routing —
    migrations, so each shard only ever re-indexes its own consumers (the
    message-passing partitioning style: partitions reconcile their own
    membership and only the top-k lists cross the boundary).
    """

    def __init__(
        self,
        profiles: Optional[Iterable[Profile]] = None,
        provider: Optional[ProfilesProvider] = None,
        config: Optional[SimilarityConfig] = None,
        num_shards: int = 4,
        routing: str = "hash",
        provider_version: Optional[Callable[[], int]] = None,
        early_termination: bool = True,
        tight_term_bound: bool = True,
        backend: str = "dict",
    ) -> None:
        self.config = config or SimilarityConfig()
        self.config.validate()
        self.router = ShardRouter(num_shards, routing)
        self.early_termination = early_termination
        self.tight_term_bound = tight_term_bound
        # Scoring kernel backend, passed through to every shard (see
        # repro.core.scoring) — all backends are score-identical, so the
        # exact-merge argument is unaffected by the choice.
        self.backend = resolve_backend(backend)
        self._shards: List[ProfileNeighborIndex] = [
            ProfileNeighborIndex(
                config=self.config,
                early_termination=early_termination,
                tight_term_bound=tight_term_bound,
                backend=self.backend,
            )
            for _ in range(num_shards)
        ]
        self._assignment: Dict[str, int] = {}
        # Learner-hook updates that would move or first-place a consumer are
        # deferred here and flushed by sync(): a batch of feedback events
        # between queries costs one placement each instead of an eager
        # re-index per event (see on_profile_update).
        self._pending: Dict[str, Profile] = {}
        self._provider = provider
        self._provider_version = provider_version
        self._last_provider_stamp: Optional[int] = None
        self._hooked = False
        self.queries = 0
        self.migrations = 0
        if profiles is not None:
            self.build(profiles)

    # -- shard introspection --------------------------------------------------

    @property
    def num_shards(self) -> int:
        return self.router.num_shards

    @property
    def shards(self) -> List[ProfileNeighborIndex]:
        """The underlying shard indexes (read-only use: tests, benchmarks)."""
        return list(self._shards)

    def shard_of(self, user_id: str) -> Optional[int]:
        """The shard currently holding ``user_id`` (None when unknown)."""
        return self._assignment.get(user_id)

    def shard_sizes(self) -> List[int]:
        return [len(shard) for shard in self._shards]

    @property
    def bound_skips(self) -> int:
        """Total candidates skipped by the norm bound across all shards."""
        return sum(shard.bound_skips for shard in self._shards)

    @property
    def mutations(self) -> int:
        """Total per-consumer (re)index/drop operations across all shards.

        Monotone: unchanged between two reads exactly when no shard's
        contents changed, which is what batch-level memos key on.
        """
        return sum(shard.mutations for shard in self._shards)

    # -- population -----------------------------------------------------------

    def build(self, profiles: Iterable[Profile]) -> None:
        """Index ``profiles`` from scratch, discarding any previous state."""
        for shard in self._shards:
            shard.build([])
        self._assignment.clear()
        for profile in profiles:
            self.add(profile)

    def add(self, profile: Profile) -> None:
        """Index (or re-index) one consumer, moving shards if routing says so."""
        user_id = profile.user_id
        self._pending.pop(user_id, None)
        shard_id = self.router.shard_for(profile)
        previous = self._assignment.get(user_id)
        if previous is not None and previous != shard_id:
            self._shards[previous].remove(user_id)
            self.migrations += 1
        self._assignment[user_id] = shard_id
        self._shards[shard_id].add(profile)

    def remove(self, user_id: str) -> None:
        """Forget a consumer entirely."""
        self._pending.pop(user_id, None)
        shard_id = self._assignment.pop(user_id, None)
        if shard_id is not None:
            self._shards[shard_id].remove(user_id)

    # -- invalidation ---------------------------------------------------------

    def invalidate(self, user_id: str) -> None:
        """Mark one consumer's caches stale in its owning shard."""
        shard_id = self._assignment.get(user_id)
        if shard_id is not None:
            self._shards[shard_id].invalidate(user_id)

    def on_profile_update(
        self, profile: Profile, event: Optional[FeedbackEvent] = None
    ) -> None:
        """ProfileLearner hook: invalidate — and if needed migrate — one consumer.

        Invalidation is lazy end to end.  A consumer whose assigned shard is
        unchanged is marked dirty inside that shard (rebuilt on the next
        query there, exactly like the single index).  A consumer whose
        dominant category moved under category routing — or who was never
        placed at all — is *queued* for placement and flushed by the next
        :meth:`sync`: a burst of feedback events between queries costs one
        re-index per touched consumer instead of one per event, and
        untouched consumers are never recomputed.  Queries always sync
        first, so no lookup ever observes the deferred placement.
        """
        user_id = profile.user_id
        desired = self.router.shard_for(profile)
        current = self._assignment.get(user_id)
        if current is None or current != desired:
            self._pending[user_id] = profile
        else:
            self._shards[current].on_profile_update(profile, event)

    def attach_to(self, learner) -> None:
        """Register the invalidation/migration hook on a :class:`ProfileLearner`."""
        learner.add_update_hook(self.on_profile_update)
        self._hooked = True

    # -- synchronisation ------------------------------------------------------

    def sync(self) -> int:
        """Reconcile shard membership with the profile source; return rebuilds.

        Mirrors the single index's strategy: when every profile mutation is
        reported through learner hooks and the provider's membership stamp is
        unchanged, only hook-flagged dirty consumers are rebuilt (inside
        their own shard).  Otherwise a full reconcile routes every current
        profile, migrating those whose assignment changed and re-indexing
        those whose version stamp moved.
        """
        if self._provider is None or (
            self._hooked
            and self._provider_version is not None
            and self._last_provider_stamp is not None
            and self._provider_version() == self._last_provider_stamp
        ):
            flushed = self._flush_pending()
            return flushed + sum(shard.sync() for shard in self._shards)

        self._flush_pending()
        if self._provider_version is not None:
            self._last_provider_stamp = self._provider_version()
        current: Dict[str, Profile] = {}
        for profile in self._provider():
            current[profile.user_id] = profile
        for user_id in list(self._assignment):
            if user_id not in current:
                self.remove(user_id)
        rebuilt = 0
        for user_id, profile in current.items():
            desired = self.router.shard_for(profile)
            assigned = self._assignment.get(user_id)
            if assigned != desired or self._shards[desired].is_stale(profile):
                self.add(profile)
                rebuilt += 1
        # Flush any hook-flagged dirty consumers the reconcile did not touch.
        rebuilt += sum(shard.sync() for shard in self._shards)
        return rebuilt

    def _flush_pending(self) -> int:
        """Place every deferred consumer (migrations and first placements)."""
        if not self._pending:
            return 0
        deferred = list(self._pending.values())
        self._pending.clear()
        for profile in deferred:
            self.add(profile)
        return len(deferred)

    def rebalance(
        self, num_shards: Optional[int] = None, routing: Optional[str] = None
    ) -> int:
        """Re-route every indexed consumer, optionally resizing the fleet.

        Called when shard servers join or fail.  Returns how many consumers
        moved shards.  Scores are unaffected — only placement changes.
        """
        self._flush_pending()
        new_router = ShardRouter(
            num_shards if num_shards is not None else self.router.num_shards,
            routing if routing is not None else self.router.strategy,
        )
        profiles: List[Profile] = []
        for shard in self._shards:
            profiles.extend(shard.indexed_profiles())
        old_assignment = dict(self._assignment)
        self.router = new_router
        self._shards = [
            ProfileNeighborIndex(
                config=self.config,
                early_termination=self.early_termination,
                tight_term_bound=self.tight_term_bound,
                backend=self.backend,
            )
            for _ in range(new_router.num_shards)
        ]
        self._assignment.clear()
        moved = 0
        for profile in profiles:
            self.add(profile)
            if old_assignment.get(profile.user_id) != self._assignment[profile.user_id]:
                moved += 1
        return moved

    # -- queries --------------------------------------------------------------

    def find_similar(
        self,
        target: Profile,
        category: Optional[str] = None,
        config: Optional[SimilarityConfig] = None,
    ) -> List[Tuple[str, float]]:
        """Fan the query out to every shard and merge the top-k lists.

        Byte-for-byte identical to the single-index and brute-force results:
        each shard returns its exact local top-k (same scores, same
        discard-rule filtering) and :func:`merge_topk` re-ranks the union with
        the same deterministic key.
        """
        config = config or self.config
        config.validate()
        self.sync()
        self.queries += 1
        per_shard = [
            shard.find_similar(target, category=category, config=config)
            for shard in self._shards
        ]
        return merge_topk(per_shard, config.top_k)

    def find_similar_many(
        self,
        targets: Iterable[Profile],
        category: Optional[str] = None,
        config: Optional[SimilarityConfig] = None,
    ) -> List[List[Tuple[str, float]]]:
        """Batch fan-out: one result list per target, shard-major execution.

        Identical results to per-target :meth:`find_similar` calls.  The
        batch reconciles membership once and then streams every target
        through each shard's warm caches (one vectorized-block repack per
        shard for the numpy kernel) before merging per target — the
        neighbourhood work a shard does for one consumer in the batch is
        shared with every other consumer it hosts.
        """
        config = config or self.config
        config.validate()
        targets = list(targets)
        if not targets:
            return []
        self.sync()
        self.queries += len(targets)
        per_shard = [
            shard.find_similar_many(targets, category=category, config=config)
            for shard in self._shards
        ]
        return [
            merge_topk(
                [shard_results[position] for shard_results in per_shard],
                config.top_k,
            )
            for position in range(len(targets))
        ]

    def __len__(self) -> int:
        return len(self._assignment)

    def __contains__(self, user_id: str) -> bool:
        return user_id in self._assignment

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedNeighborIndex(shards={self.shard_sizes()}, "
            f"routing={self.router.strategy!r}, migrations={self.migrations})"
        )


def find_similar_users_sharded(
    target: Profile,
    candidates: Iterable[Profile],
    config: Optional[SimilarityConfig] = None,
    category: Optional[str] = None,
    num_shards: int = 4,
    routing: str = "hash",
    index: Optional[ShardedNeighborIndex] = None,
) -> List[Tuple[str, float]]:
    """Drop-in sharded replacement for :func:`find_similar_users`.

    When ``index`` is omitted a transient sharded index is built over
    ``candidates`` (useful for one-off equivalence checks); pass a long-lived
    :class:`ShardedNeighborIndex` to amortise the precomputation.
    """
    if index is None:
        index = ShardedNeighborIndex(
            profiles=candidates,
            config=config,
            num_shards=num_shards,
            routing=routing,
        )
    return index.find_similar(target, category=category, config=config)
