"""The paper's recommendation mechanism: profile similarity + live results.

Section 4.4: "The generation of recommendation information is to find the
similar user's profile through the similarity. ... And then compare the
consumer Y's profile with the user queried merchandise information [and] the
recommendation information is generated."

Concretely the :class:`AgentHybridRecommender` does what the BRA asks the
mechanism to do in the Figure 4.2 workflow:

1. load the active consumer's hierarchical profile;
2. find the most similar other consumers in UserDB with
   :func:`repro.core.similarity.find_similar_users`, applying the Figure 4.5
   discard rule for the queried category;
3. collect the merchandise those similar consumers prefer (their observational
   ratings weighted by profile similarity);
4. when the consumer just ran a query, score the queried merchandise against
   the similar consumers' profiles and the consumer's own profile, so the
   returned recommendation list both re-ranks the live results and adds the
   "goods whose interest is closest" from the similar consumers.

Without other users (cold start) the mechanism degrades gracefully to the
consumer's own profile (information filtering), which is exactly the synergy
§2.3 motivates.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import RecommendationError
from repro.core.items import Item, ItemCatalogView
from repro.core.information_filtering import InformationFilteringRecommender
from repro.core.neighbors import ProfileNeighborIndex, _version_of as _profile_stamp
from repro.core.profile import Profile
from repro.core.ratings import RatingsStore
from repro.core.recommender import Recommendation, Recommender
from repro.core.similarity import (
    SimilarityConfig,
    cosine_similarity_cached,
    find_similar_users,
    vector_norm,
)

__all__ = ["AgentHybridRecommender"]

ProfileProvider = Callable[[str], Optional[Profile]]
AllProfilesProvider = Callable[[], Iterable[Profile]]


class AgentHybridRecommender(Recommender):
    """The paper's agent-based similarity recommender."""

    name = "agent-hybrid"

    def __init__(
        self,
        ratings: RatingsStore,
        catalog: ItemCatalogView,
        profile_of: ProfileProvider,
        all_profiles: AllProfilesProvider,
        similarity_config: Optional[SimilarityConfig] = None,
        collaborative_weight: float = 0.6,
        content_weight: float = 0.4,
        neighbor_index: Optional[ProfileNeighborIndex] = None,
    ) -> None:
        if collaborative_weight < 0 or content_weight < 0:
            raise RecommendationError("mixing weights cannot be negative")
        if collaborative_weight + content_weight <= 0:
            raise RecommendationError("at least one mixing weight must be positive")
        self.ratings = ratings
        self.catalog = catalog
        self.profile_of = profile_of
        self.all_profiles = all_profiles
        self.similarity_config = similarity_config or SimilarityConfig()
        self.collaborative_weight = collaborative_weight
        self.content_weight = content_weight
        self.neighbor_index = neighbor_index
        self._content = InformationFilteringRecommender(catalog, profile_of)
        # prepare_batch memo: user_id -> (profile stamp, neighbour list),
        # valid only while the index's mutation counter equals _batch_stamp.
        self._batch_neighbours: Dict[str, Tuple[Tuple, List[Tuple[str, float]]]] = {}
        self._batch_stamp: Optional[int] = None

    # -- similar users ----------------------------------------------------------

    def prepare_batch(self, user_ids: Sequence[str]) -> None:
        """Warm one shared neighbour lookup for a batch of ``recommend`` calls.

        Runs the whole batch's category-free neighbour queries through
        :meth:`ProfileNeighborIndex.find_similar_many` — one index sync, one
        vectorized pass per shard — and memoizes the answers.
        ``similar_users`` serves from the memo only while (a) the index's
        mutation counter still matches the post-warm-up stamp after a fresh
        ``sync()`` and (b) the consumer's own profile stamp is unchanged, so
        a write landing mid-batch falls back to a live query and the batch
        output stays byte-identical to per-user ``recommend`` calls.
        """
        self._batch_neighbours = {}
        self._batch_stamp = None
        if self.neighbor_index is None:
            return
        targets = []
        for user_id in user_ids:
            profile = self.profile_of(user_id)
            if profile is not None and not profile.is_empty():
                targets.append(profile)
        if not targets:
            return
        results = self.neighbor_index.find_similar_many(
            targets, category=None, config=self.similarity_config
        )
        # Read the stamp *after* find_similar_many: its initial sync may have
        # rebuilt dirty consumers, and those rebuilds must not invalidate the
        # memo they produced.
        self._batch_stamp = self.neighbor_index.mutations
        self._batch_neighbours = {
            target.user_id: (_profile_stamp(target), result)
            for target, result in zip(targets, results)
        }

    def similar_users(
        self, user_id: str, category: Optional[str] = None
    ) -> List[Tuple[str, float]]:
        """The similar-consumer list the mechanism bases recommendations on.

        Uses the precomputed :class:`ProfileNeighborIndex` when one is wired
        in (score-identical to the brute-force scan, just faster) and falls
        back to scanning ``all_profiles()`` otherwise.
        """
        target = self.profile_of(user_id)
        if target is None or target.is_empty():
            return []
        if self.neighbor_index is not None:
            if category is None and self._batch_neighbours:
                memo = self._batch_neighbours.get(user_id)
                if memo is not None:
                    self.neighbor_index.sync()
                    if (
                        self.neighbor_index.mutations == self._batch_stamp
                        and memo[0] == _profile_stamp(target)
                    ):
                        return list(memo[1])
            return self.neighbor_index.find_similar(
                target, category=category, config=self.similarity_config
            )
        return find_similar_users(
            target, self.all_profiles(), self.similarity_config, category=category
        )

    # -- scoring helpers ---------------------------------------------------------

    def _neighbour_item_scores(
        self,
        user_id: str,
        neighbours: Sequence[Tuple[str, float]],
        category: Optional[str],
        excluded: set,
    ) -> Dict[str, float]:
        """Similarity-weighted preference of the neighbourhood for each item."""
        seen = set(self.ratings.items_of(user_id))
        scores: Dict[str, float] = {}
        weights: Dict[str, float] = {}
        for neighbour, similarity in neighbours:
            for item_id, value in self.ratings.user_vector(neighbour).items():
                if item_id in seen or item_id in excluded:
                    continue
                if category is not None and item_id in self.catalog:
                    if self.catalog.get(item_id).category != category:
                        continue
                scores[item_id] = scores.get(item_id, 0.0) + similarity * value
                weights[item_id] = weights.get(item_id, 0.0) + similarity
        return {
            item_id: scores[item_id] / weights[item_id]
            for item_id in scores
            if weights[item_id] > 0
        }

    def _normalized(self, raw: Dict[str, float]) -> Dict[str, float]:
        if not raw:
            return {}
        peak = max(raw.values())
        if peak <= 0:
            return {item_id: 0.0 for item_id in raw}
        return {item_id: value / peak for item_id, value in raw.items()}

    # -- Recommender interface -----------------------------------------------------

    def can_recommend(self, user_id: str) -> bool:
        profile = self.profile_of(user_id)
        return profile is not None and not profile.is_empty()

    def recommend(
        self,
        user_id: str,
        k: int = 10,
        category: Optional[str] = None,
        exclude: Iterable[str] = (),
    ) -> List[Recommendation]:
        profile = self.profile_of(user_id)
        if profile is None or profile.is_empty():
            return []
        excluded = set(exclude)

        neighbours = self.similar_users(user_id, category=category)
        neighbour_scores = self._normalized(
            self._neighbour_item_scores(user_id, neighbours, category, excluded)
        )

        content_candidates = self._content.recommend(
            user_id, k=max(k * 3, 30), category=category, exclude=excluded
        )
        content_scores = self._normalized(
            {rec.item_id: rec.score for rec in content_candidates}
        )

        total_weight = self.collaborative_weight + self.content_weight
        combined: Dict[str, float] = {}
        for item_id in set(neighbour_scores) | set(content_scores):
            combined[item_id] = (
                self.collaborative_weight * neighbour_scores.get(item_id, 0.0)
                + self.content_weight * content_scores.get(item_id, 0.0)
            ) / total_weight

        recommendations = [
            Recommendation(
                item_id=item_id,
                score=score,
                source=self.name,
                reason=(
                    "preferred by similar consumers"
                    if item_id in neighbour_scores
                    else "matches your profile"
                ),
            )
            for item_id, score in combined.items()
            if score > 0
        ]
        recommendations.sort(key=lambda rec: (-rec.score, rec.item_id))
        return recommendations[:k]

    # -- query-time re-ranking (Figure 4.2 step "generate recommendation") ----------

    def recommend_for_query(
        self,
        user_id: str,
        query_items: Sequence[Item],
        k: int = 10,
        extra: int = 5,
    ) -> List[Recommendation]:
        """Rank live query results and append similar-consumer discoveries.

        Args:
            user_id: the querying consumer.
            query_items: merchandise returned by the marketplaces for the
                current query (the MBA's findings in Figure 4.2).
            k: how many ranked query results to return.
            extra: how many additional similar-consumer favourites to append
                beyond the query results (serendipitous discoveries).
        """
        profile = self.profile_of(user_id)
        query_categories = {item.category for item in query_items}
        category = (
            next(iter(query_categories)) if len(query_categories) == 1 else None
        )
        # ONE neighbour lookup serves the whole batch of query items (through
        # the index when wired in), and the per-(neighbour, category) term
        # vectors below are extracted and normed once rather than once per
        # item — the work shared across query items.  Scores are bit-identical
        # to evaluating each item on its own against the same neighbour list.
        neighbours = self.similar_users(user_id, category=category)
        neighbour_profiles = [
            self.profile_of(neighbour) for neighbour, _ in neighbours
        ]
        neighbour_terms: Dict[Tuple[str, str], Tuple[Dict[str, float], float]] = {}
        for (neighbour_id, _), neighbour_profile in zip(neighbours, neighbour_profiles):
            if neighbour_profile is None:
                continue
            for item_category in query_categories:
                if neighbour_profile.has_category(item_category):
                    terms = neighbour_profile.category(
                        item_category, create=False
                    ).terms.as_dict()
                    neighbour_terms[(neighbour_id, item_category)] = (
                        terms,
                        vector_norm(terms),
                    )

        ranked: List[Recommendation] = []
        for item in query_items:
            own_match = self._content.score_item(profile, item) if profile else 0.0
            item_weights = item.term_weights
            item_norm = vector_norm(item_weights)
            neighbour_match = 0.0
            weight_total = 0.0
            for neighbour_id, similarity in neighbours:
                cached = neighbour_terms.get((neighbour_id, item.category))
                if cached is None:
                    continue
                match = cosine_similarity_cached(
                    cached[0], cached[1], item_weights, item_norm
                )
                neighbour_match += similarity * match
                weight_total += similarity
            if weight_total > 0:
                neighbour_match /= weight_total
            score = (
                self.content_weight * own_match
                + self.collaborative_weight * neighbour_match
            ) / (self.content_weight + self.collaborative_weight)
            ranked.append(
                Recommendation(
                    item_id=item.item_id,
                    score=score,
                    source=self.name,
                    reason="ranked query result",
                )
            )
        ranked.sort(key=lambda rec: (-rec.score, rec.item_id))
        ranked = ranked[:k]

        if extra > 0:
            already = {rec.item_id for rec in ranked} | {item.item_id for item in query_items}
            discoveries = self.recommend(
                user_id, k=extra, category=category, exclude=already
            )
            ranked.extend(discoveries)
        return ranked
