"""Information filtering (the IF technique of §2.3).

"IF techniques build a profile of user preferences that is particularly
valuable when a user encounters new content that has not been rated before
... they do not depend on having other users in the system."

The recommender scores each catalogue item by how well its descriptive terms
and category match the consumer's learned hierarchical profile: a cosine match
between the item's term vector and the profile's terms for the item's
category, boosted by the scalar category preference.  Because it only needs
the consumer's own profile and the item content, it keeps working for brand
new items (no one has rated them yet) — the property the paper highlights —
but it cannot produce serendipitous cross-category discoveries.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional

from repro.errors import RecommendationError
from repro.core.items import Item, ItemCatalogView
from repro.core.profile import Profile
from repro.core.recommender import Recommendation, Recommender
from repro.core.similarity import cosine_similarity

__all__ = ["InformationFilteringRecommender"]

ProfileProvider = Callable[[str], Optional[Profile]]


class InformationFilteringRecommender(Recommender):
    """Content-based recommender matching items against the consumer profile."""

    name = "information-filtering"

    def __init__(
        self,
        catalog: ItemCatalogView,
        profiles: ProfileProvider,
        category_boost: float = 0.3,
        subcategory_boost: float = 0.2,
    ) -> None:
        if category_boost < 0 or subcategory_boost < 0:
            raise RecommendationError("boost factors cannot be negative")
        self.catalog = catalog
        self.profiles = profiles
        self.category_boost = category_boost
        self.subcategory_boost = subcategory_boost

    # -- scoring -----------------------------------------------------------------

    def score_item(self, profile: Profile, item: Item) -> float:
        """Content match score of ``item`` against ``profile`` in [0, ~1.5]."""
        if not profile.has_category(item.category):
            return 0.0
        category = profile.category(item.category, create=False)

        term_match = cosine_similarity(category.terms.as_dict(), item.term_weights)

        max_preference = max(
            (c.preference for c in profile.categories.values()), default=0.0
        )
        category_part = 0.0
        if max_preference > 0:
            category_part = self.category_boost * (category.preference / max_preference)

        subcategory_part = 0.0
        if item.subcategory and item.subcategory in category.subcategories:
            sub = category.subcategories[item.subcategory]
            subcategory_part = self.subcategory_boost * cosine_similarity(
                sub.terms.as_dict(), item.term_weights
            )

        return term_match + category_part + subcategory_part

    def can_recommend(self, user_id: str) -> bool:
        profile = self.profiles(user_id)
        return profile is not None and not profile.is_empty()

    def recommend(
        self,
        user_id: str,
        k: int = 10,
        category: Optional[str] = None,
        exclude: Iterable[str] = (),
    ) -> List[Recommendation]:
        profile = self.profiles(user_id)
        if profile is None or profile.is_empty():
            return []
        excluded = set(exclude)

        candidates = (
            self.catalog.in_category(category) if category is not None else list(self.catalog)
        )
        recommendations: List[Recommendation] = []
        for item in candidates:
            if item.item_id in excluded:
                continue
            score = self.score_item(profile, item)
            if score > 0:
                recommendations.append(
                    Recommendation(
                        item_id=item.item_id,
                        score=score,
                        source=self.name,
                        reason=f"matches your interest in {item.category}",
                    )
                )
        recommendations.sort(key=lambda rec: (-rec.score, rec.item_id))
        return recommendations[:k]
