"""Precomputed neighbor index for the similarity algorithm (Figure 4.5).

:func:`repro.core.similarity.find_similar_users` compares the active profile
against *every* stored profile and re-flattens both hierarchical profiles for
every pair, which makes one similar-user search O(users × profile size).  That
is the hot path of the whole mechanism — the BRA runs it for every
recommendation request — so the index here restructures it:

- **Per-profile caches.**  For every consumer the index keeps the category
  preference vector, the flattened term vector and both vector norms, built
  once and reused across queries instead of recomputed per pair.
- **Category windows.**  Per category, candidates are kept sorted by their
  scalar preference value, so the Figure 4.5 discard rule ("if Consumer X's
  preference merchandise item value Tx [is] different from ... Ty, the
  similarity result will be discarded") prunes candidates with a binary
  search *before* any scoring happens rather than after a full comparison.
- **Incremental invalidation.**  :class:`~repro.core.profile_learning.ProfileLearner`
  fires an update hook per feedback event; the index marks exactly that
  consumer dirty and lazily rebuilds its caches on the next query.  A version
  stamp (``feedback_events`` / ``updated_at``) is checked as a second line of
  defence so profiles replaced wholesale in UserDB are also picked up.

The indexed search is score-identical to the brute-force one: it replicates
the same cosine formulas over the same dictionaries (see the property suite in
``tests/property/test_neighbor_index.py``), so it can be swapped in anywhere
:func:`find_similar_users` is used today.
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.core.profile import Profile
from repro.core.profile_learning import FeedbackEvent
from repro.core.scoring import create_kernel, resolve_backend
from repro.core.similarity import (
    SimilarityConfig,
    vector_norm as _norm,
)

__all__ = ["ProfileNeighborIndex", "find_similar_users_indexed"]

ProfilesProvider = Callable[[], Iterable[Profile]]


@dataclass
class _ProfileEntry:
    """Cached similarity inputs of one indexed consumer."""

    user_id: str
    profile: Profile
    prefs: Dict[str, float]
    pref_norm: float
    terms: Dict[str, float]
    term_norm: float
    #: L1 norm and max absolute weight of the flattened term vector — the
    #: Hölder-bound inputs for tight early termination.
    term_l1: float
    term_max: float
    version: Tuple[int, int, float, int]


def _version_of(profile: Profile) -> Tuple[int, int, float, int]:
    """Cheap change stamp: object identity plus the learner's counters."""
    return (
        id(profile),
        profile.feedback_events,
        profile.updated_at,
        len(profile.categories),
    )


class ProfileNeighborIndex:
    """Precomputed per-profile caches + category windows for neighbor search.

    The index can be fed two ways:

    - with a ``provider`` callable returning the current profiles (the way
      the recommendation service wires it to UserDB): every :meth:`sync`
      reconciles against the provider, picking up registrations, removals and
      version changes;
    - explicitly through :meth:`build` / :meth:`add` for offline datasets.

    Invalidation is incremental: :meth:`on_profile_update` (the hook handed to
    :meth:`~repro.core.profile_learning.ProfileLearner.add_update_hook` via
    :meth:`attach_to`) marks only the touched consumer dirty; everyone else's
    caches survive untouched.
    """

    def __init__(
        self,
        profiles: Optional[Iterable[Profile]] = None,
        provider: Optional[ProfilesProvider] = None,
        config: Optional[SimilarityConfig] = None,
        provider_version: Optional[Callable[[], int]] = None,
        early_termination: bool = False,
        tight_term_bound: bool = True,
        backend: str = "dict",
    ) -> None:
        self.config = config or SimilarityConfig()
        self.config.validate()
        # Scoring kernel backend ("dict" | "array" | "numpy" | "auto").  The
        # default stays the reference dict loops so existing callers are
        # untouched; platform wiring selects the backend via PlatformConfig.
        # All backends are score-identical by construction (see
        # repro.core.scoring and tests/property/test_scoring_kernel.py).
        self.backend = resolve_backend(backend)
        self._kernel = create_kernel(self.backend)
        # Cauchy-Schwarz norm-bound candidate skipping (see find_similar).
        # Off by default so the index stays a drop-in reference implementation;
        # the sharded index turns it on inside every shard.
        self.early_termination = early_termination
        # With the bound on, additionally tighten the term-cosine ceiling
        # below 1 via cached L1/L-inf norms (Hölder); ``False`` keeps the
        # plain Cauchy-Schwarz ceiling for A/B comparison in the benchmarks.
        self.tight_term_bound = tight_term_bound
        self.bound_skips = 0
        self._provider = provider
        # When every profile mutation is reported through learner hooks
        # (attach_to) AND the provider exposes a membership version stamp,
        # sync() can skip the full per-profile reconcile entirely.
        self._provider_version = provider_version
        self._last_provider_stamp: Optional[int] = None
        self._hooked = False
        self._entries: Dict[str, _ProfileEntry] = {}
        self._profiles_by_id: Dict[str, Profile] = {}
        self._dirty: Set[str] = set()
        # category → user → scalar preference value, and the lazily sorted
        # (value, user) window used by the discard-rule pruning.
        self._category_values: Dict[str, Dict[str, float]] = {}
        self._sorted_windows: Dict[str, Tuple[List[float], List[str]]] = {}
        self.rebuilds = 0
        self.queries = 0
        # Monotone stamp bumped on every entry (re)index or drop; batch
        # consumers (AgentHybridRecommender.prepare_batch) use it to prove a
        # memoized neighbor list is still current.
        self.mutations = 0
        if profiles is not None:
            self.build(profiles)

    # -- population ----------------------------------------------------------

    def build(self, profiles: Iterable[Profile]) -> None:
        """Index ``profiles`` from scratch, discarding any previous state."""
        self._entries.clear()
        self._profiles_by_id.clear()
        self._dirty.clear()
        self._category_values.clear()
        self._sorted_windows.clear()
        self._kernel.reset()
        for profile in profiles:
            self.add(profile)

    def add(self, profile: Profile) -> None:
        """Index (or re-index) one consumer's profile immediately."""
        self._profiles_by_id[profile.user_id] = profile
        self._index_profile(profile)
        self._dirty.discard(profile.user_id)

    def remove(self, user_id: str) -> None:
        """Forget a consumer entirely."""
        self._profiles_by_id.pop(user_id, None)
        self._dirty.discard(user_id)
        self._drop_entry(user_id)

    # -- invalidation ---------------------------------------------------------

    def invalidate(self, user_id: str) -> None:
        """Mark one consumer's caches stale; rebuilt lazily on next query."""
        if user_id in self._profiles_by_id:
            self._dirty.add(user_id)

    def on_profile_update(
        self, profile: Profile, event: Optional[FeedbackEvent] = None
    ) -> None:
        """ProfileLearner update hook: invalidate exactly this consumer."""
        self._profiles_by_id[profile.user_id] = profile
        self._dirty.add(profile.user_id)

    def attach_to(self, learner) -> None:
        """Register the invalidation hook on a :class:`ProfileLearner`."""
        learner.add_update_hook(self.on_profile_update)
        self._hooked = True

    def dirty_users(self) -> Set[str]:
        """The consumers whose caches are currently stale (for tests)."""
        return set(self._dirty)

    def indexed_profiles(self) -> List[Profile]:
        """The authoritative profile objects currently held by this index."""
        return list(self._profiles_by_id.values())

    def cached_entry(self, user_id: str) -> Optional[_ProfileEntry]:
        """The raw cached entry of one consumer (for tests/diagnostics)."""
        return self._entries.get(user_id)

    def is_stale(self, profile: Profile) -> bool:
        """Whether ``profile`` needs re-indexing (absent, dirty or changed).

        Used by reconciling owners (the sharded index) that manage membership
        themselves instead of handing this index a provider.
        """
        entry = self._entries.get(profile.user_id)
        return (
            entry is None
            or profile.user_id in self._dirty
            or entry.version != _version_of(profile)
        )

    # -- synchronisation ------------------------------------------------------

    def sync(self) -> int:
        """Reconcile caches with the profile source; return rebuild count.

        Normally a full reconcile against the provider (O(community), cheap
        per profile but linear).  When learner hooks are attached and the
        provider supplies a membership version stamp, an unchanged stamp
        proves the profile set did not change, so only hook-flagged dirty
        consumers are rebuilt — the common per-query case becomes O(dirty).
        """
        if (
            self._provider is not None
            and self._hooked
            and self._provider_version is not None
            and self._last_provider_stamp is not None
            and self._provider_version() == self._last_provider_stamp
        ):
            return self._rebuild_dirty()
        rebuilt = 0
        if self._provider is not None:
            if self._provider_version is not None:
                self._last_provider_stamp = self._provider_version()
            current: Dict[str, Profile] = {}
            for profile in self._provider():
                current[profile.user_id] = profile
            for user_id in list(self._entries):
                if user_id not in current:
                    self.remove(user_id)
            for user_id, profile in current.items():
                self._profiles_by_id[user_id] = profile
                entry = self._entries.get(user_id)
                if (
                    entry is None
                    or user_id in self._dirty
                    or entry.version != _version_of(profile)
                ):
                    self._index_profile(profile)
                    rebuilt += 1
        else:
            return self._rebuild_dirty()
        self._dirty.clear()
        return rebuilt

    def _rebuild_dirty(self) -> int:
        """Rebuild only hook-flagged consumers (no provider reconcile)."""
        rebuilt = 0
        for user_id in list(self._dirty):
            profile = self._profiles_by_id.get(user_id)
            if profile is None:
                self._drop_entry(user_id)
                continue
            self._index_profile(profile)
            rebuilt += 1
        self._dirty.clear()
        return rebuilt

    # -- queries --------------------------------------------------------------

    def find_similar(
        self,
        target: Profile,
        category: Optional[str] = None,
        config: Optional[SimilarityConfig] = None,
    ) -> List[Tuple[str, float]]:
        """Indexed equivalent of :func:`repro.core.similarity.find_similar_users`.

        Returns the same ranked ``(user_id, similarity)`` list the brute-force
        search would: same scores, same discard-rule filtering, same
        deterministic tie-breaking.  The target itself is never included and
        does not need to be indexed.

        With ``early_termination`` enabled the expensive flattened-term dot
        product is skipped for candidates that provably cannot reach the
        current k-th best score.  The preference cosine (a handful of
        categories) is computed exactly first; the term cosine is bounded
        above without touching the candidate's term dictionary — exactly 0
        when either cached norm is 0, else by Cauchy-Schwarz
        (``dot(t, e) <= ||t||₂·||e||₂``, so at most 1) tightened by Hölder
        when ``tight_term_bound`` is on:
        ``dot(t, e) <= min(||t||∞·||e||₁, ||t||₁·||e||∞)``, whose quotient
        by ``||t||₂·||e||₂`` is below 1 for every vector that is not
        perfectly concentrated on the aligned term — the per-entry L1 norm
        and max weight are cached at index time.  The tight bound is
        inflated by one part in 10⁹ before comparing, so float rounding can
        never skip a candidate whose exact score ties the k-th best.  A
        candidate is skipped only when its bound is *strictly* below the
        k-th best score seen so far, so ties (broken by user id) are never
        affected and the returned list is identical either way.
        """
        config = config or self.config
        config.validate()
        self.sync()
        self.queries += 1

        # The target side is computed fresh from the profile that was passed
        # in (exactly what the brute-force path sees), so a caller holding a
        # detached copy still gets correct scores.
        target_prefs = target.preference_vector()
        target_pref_norm = _norm(target_prefs)
        target_terms = target.flattened_terms().as_dict()
        target_term_norm = _norm(target_terms)
        target_term_l1 = target_term_max = 0.0
        if self.early_termination and self.tight_term_bound:
            target_abs_weights = [abs(value) for value in target_terms.values()]
            target_term_l1 = sum(target_abs_weights)
            target_term_max = max(target_abs_weights, default=0.0)

        candidates = self._candidate_ids(target_prefs, category, config)
        use_bound = self.early_termination
        tq = self._kernel.prepare_target(
            target_prefs,
            target_pref_norm,
            target_terms,
            target_term_norm,
            target_term_l1,
            target_term_max,
        )

        # A vectorized kernel scores the whole entry block in a few passes;
        # that wins whenever most entries are candidates anyway, but a narrow
        # discard-rule window is cheaper through the per-candidate loop.
        if self._kernel.vectorized and self._entries and (
            category is None or len(candidates) * 4 >= len(self._entries)
        ):
            scored = self._block_scored(
                tq, candidates, category, config, use_bound, target.user_id
            )
        else:
            scored = self._scalar_scored(
                tq, candidates, config, use_bound, target.user_id
            )

        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[: config.top_k]

    def find_similar_many(
        self,
        targets: Iterable[Profile],
        category: Optional[str] = None,
        config: Optional[SimilarityConfig] = None,
    ) -> List[List[Tuple[str, float]]]:
        """Batch variant of :meth:`find_similar`, one result list per target.

        Results are exactly what per-target :meth:`find_similar` calls would
        return; the win is amortization — one provider reconcile and (for the
        numpy backend) one block repack warm the index for the whole batch
        instead of being re-checked per consumer.
        """
        self.sync()
        return [
            self.find_similar(target, category=category, config=config)
            for target in targets
        ]

    # -- scoring loops ---------------------------------------------------------

    def _scalar_scored(
        self,
        tq,
        candidates: Iterable[str],
        config: SimilarityConfig,
        use_bound: bool,
        exclude_user: str,
    ) -> List[Tuple[str, float]]:
        """Per-candidate loop over the kernel's scalar dot products."""
        kernel = self._kernel
        preference_weight = config.preference_weight
        term_weight = config.term_weight
        total_weight = preference_weight + term_weight
        minimum = config.min_similarity
        top_k = config.top_k
        # Min-heap of the k best scores seen so far; its root is the score a
        # candidate must reach to possibly make the final top-k list.
        best_scores: List[float] = []

        scored: List[Tuple[str, float]] = []
        for user_id in candidates:
            if user_id == exclude_user:
                continue
            entry = self._entries[user_id]
            preference_part = kernel.pref_part(tq, entry)
            if use_bound:
                if tq.term_norm > 0.0 and entry.term_norm > 0.0:
                    term_bound = 1.0
                    if self.tight_term_bound:
                        # Hölder both ways round; keep the smaller ceiling.
                        holder = min(
                            tq.term_max * entry.term_l1,
                            tq.term_l1 * entry.term_max,
                        )
                        tight = holder / (tq.term_norm * entry.term_norm)
                        # One-part-in-1e9 inflation: provably above the true
                        # cosine even after float rounding of dot and norms.
                        term_bound = min(1.0, tight * (1.0 + 1e-9))
                else:
                    term_bound = 0.0
                bound = (
                    preference_weight * preference_part + term_weight * term_bound
                ) / total_weight
                if len(best_scores) == top_k and bound < best_scores[0]:
                    # Even a perfectly aligned term vector cannot lift this
                    # candidate past the current k-th score: the final sort
                    # would rank at least k candidates strictly above it (or
                    # it falls below min_similarity along with the k-th).
                    self.bound_skips += 1
                    continue
            term_part = kernel.term_part(tq, entry)
            score = (
                preference_weight * preference_part + term_weight * term_part
            ) / total_weight
            score = max(0.0, min(1.0, score))
            if use_bound:
                if len(best_scores) < top_k:
                    heapq.heappush(best_scores, score)
                elif score > best_scores[0]:
                    heapq.heapreplace(best_scores, score)
            if score >= minimum:
                scored.append((user_id, score))
        return scored

    def _block_scored(
        self,
        tq,
        candidates: Iterable[str],
        category: Optional[str],
        config: SimilarityConfig,
        use_bound: bool,
        exclude_user: str,
    ) -> List[Tuple[str, float]]:
        """Vectorized path: score the whole block, then filter / replay.

        The kernel returns bit-identical scores (and early-termination
        bounds) for every indexed entry; without bounds and without a
        category window the survivors drop out of one vectorized filter.
        With bounds on, the sequential skip/heap decision process is
        replayed over the precomputed score and bound lists — same skip
        decisions, same ``bound_skips`` increments, no dot products.
        """
        preference_weight = config.preference_weight
        term_weight = config.term_weight
        block = self._kernel.score_block(
            self._entries,
            tq,
            preference_weight,
            term_weight,
            preference_weight + term_weight,
            use_bound,
            self.tight_term_bound,
        )
        minimum = config.min_similarity
        if not use_bound and category is None:
            return block.pairs_at_least(minimum, exclude_user)

        scores = block.scores
        row_of = block.row_of
        scored: List[Tuple[str, float]] = []
        if use_bound:
            bounds = block.bounds
            top_k = config.top_k
            best_scores: List[float] = []
            for user_id in candidates:
                if user_id == exclude_user:
                    continue
                row = row_of[user_id]
                if len(best_scores) == top_k and bounds[row] < best_scores[0]:
                    self.bound_skips += 1
                    continue
                score = scores[row]
                if len(best_scores) < top_k:
                    heapq.heappush(best_scores, score)
                elif score > best_scores[0]:
                    heapq.heapreplace(best_scores, score)
                if score >= minimum:
                    scored.append((user_id, score))
        else:
            for user_id in candidates:
                if user_id == exclude_user:
                    continue
                score = scores[row_of[user_id]]
                if score >= minimum:
                    scored.append((user_id, score))
        return scored

    # -- internals ------------------------------------------------------------

    def _candidate_ids(
        self,
        target_prefs: Dict[str, float],
        category: Optional[str],
        config: SimilarityConfig,
    ) -> Iterable[str]:
        """Candidates surviving the discard rule, pruned before scoring."""
        if category is None:
            return list(self._entries)

        tolerance = config.discard_tolerance
        target_value = target_prefs.get(category, 0.0)
        members = self._category_values.get(category, {})

        candidates: List[str] = []
        if members:
            values, user_ids = self._window(category)
            # Widen the bisect bounds by one ulp each way, then re-apply the
            # exact brute-force predicate: the window is a fast pre-filter,
            # |Tx - Ty| <= tolerance stays the single source of truth.
            low = math.nextafter(target_value - tolerance, -math.inf)
            high = math.nextafter(target_value + tolerance, math.inf)
            start = bisect_left(values, low)
            stop = bisect_right(values, high)
            for position in range(start, stop):
                if abs(target_value - values[position]) <= tolerance:
                    candidates.append(user_ids[position])
        if abs(target_value - 0.0) <= tolerance and len(members) < len(self._entries):
            # Consumers without the category have an implicit preference of
            # 0.0 and pass the discard rule whenever the target's own value
            # is within tolerance of zero.
            candidates.extend(
                user_id for user_id in self._entries if user_id not in members
            )
        return candidates

    def _window(self, category: str) -> Tuple[List[float], List[str]]:
        cached = self._sorted_windows.get(category)
        if cached is None:
            pairs = sorted(
                (value, user_id)
                for user_id, value in self._category_values[category].items()
            )
            cached = ([pair[0] for pair in pairs], [pair[1] for pair in pairs])
            self._sorted_windows[category] = cached
        return cached

    def _index_profile(self, profile: Profile) -> None:
        user_id = profile.user_id
        old = self._entries.get(user_id)
        if old is not None:
            self._unlink_categories(old)
        prefs = profile.preference_vector()
        terms = profile.flattened_terms().as_dict()
        abs_weights = [abs(value) for value in terms.values()]
        entry = _ProfileEntry(
            user_id=user_id,
            profile=profile,
            prefs=prefs,
            pref_norm=_norm(prefs),
            terms=terms,
            term_norm=_norm(terms),
            term_l1=sum(abs_weights),
            term_max=max(abs_weights, default=0.0),
            version=_version_of(profile),
        )
        self._entries[user_id] = entry
        self._kernel.entry_changed(entry)
        for name, value in prefs.items():
            self._category_values.setdefault(name, {})[user_id] = value
            self._sorted_windows.pop(name, None)
        self.rebuilds += 1
        self.mutations += 1

    def _drop_entry(self, user_id: str) -> None:
        entry = self._entries.pop(user_id, None)
        if entry is not None:
            self._unlink_categories(entry)
            self._kernel.entry_removed(user_id)
            self.mutations += 1

    def _unlink_categories(self, entry: _ProfileEntry) -> None:
        for name in entry.prefs:
            bucket = self._category_values.get(name)
            if bucket is not None:
                bucket.pop(entry.user_id, None)
                if not bucket:
                    del self._category_values[name]
                self._sorted_windows.pop(name, None)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, user_id: str) -> bool:
        return user_id in self._entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProfileNeighborIndex(entries={len(self._entries)}, "
            f"dirty={len(self._dirty)}, rebuilds={self.rebuilds})"
        )


def find_similar_users_indexed(
    target: Profile,
    candidates: Iterable[Profile],
    config: Optional[SimilarityConfig] = None,
    category: Optional[str] = None,
    index: Optional[ProfileNeighborIndex] = None,
) -> List[Tuple[str, float]]:
    """Drop-in indexed replacement for :func:`find_similar_users`.

    When ``index`` is omitted a transient index is built over ``candidates``
    (useful for one-off equivalence checks); pass a long-lived
    :class:`ProfileNeighborIndex` to amortise the precomputation across
    queries, which is where the speedup comes from.
    """
    if index is None:
        index = ProfileNeighborIndex(profiles=candidates, config=config)
    return index.find_similar(target, category=category, config=config)
