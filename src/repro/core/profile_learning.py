"""The profile learning rule (Figure 4.5, top formula).

The paper quotes Middleton's profile update::

    New_profile_of_Category_c = W_ci + α · Σ_j (w_ji · quality_of_feedback_j)

where ``W_ci`` is the current weight of term *i* in category *c*, ``w_ji`` is
the weight of term *i* in "document" *j* (here: the merchandise item the
consumer interacted with) and α is the learning rate.  The *quality of
feedback* reflects how strong the behaviour was: a purchase teaches more than
a query.

The :class:`ProfileLearner` applies that rule to the hierarchical profile of
:mod:`repro.core.profile` every time the BRA reports a behaviour event, and
also maintains the per-category scalar preference value the similarity
algorithm compares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import ProfileError
from repro.core.items import Item
from repro.core.profile import Profile
from repro.core.ratings import InteractionKind

__all__ = [
    "FeedbackEvent",
    "LearningConfig",
    "ProfileLearner",
    "FEEDBACK_QUALITY",
    "UpdateHook",
]


#: Quality-of-feedback factor per behaviour kind.  Purchases are the strongest
#: evidence of interest; queries the weakest; explicit ratings are scaled by
#: the rating value when the event carries one.
FEEDBACK_QUALITY: Dict[InteractionKind, float] = {
    InteractionKind.QUERY: 0.2,
    InteractionKind.VIEW: 0.3,
    InteractionKind.NEGOTIATE: 0.6,
    InteractionKind.AUCTION_BID: 0.7,
    InteractionKind.BUY: 1.0,
    InteractionKind.RATE: 0.8,
}


@dataclass(frozen=True)
class FeedbackEvent:
    """One behaviour event reported by the BRA to the profile agent."""

    user_id: str
    item: Item
    kind: InteractionKind
    timestamp: float = 0.0
    rating: Optional[float] = None

    def quality(self) -> float:
        """The quality-of-feedback factor of this event."""
        base = FEEDBACK_QUALITY[self.kind]
        if self.kind is InteractionKind.RATE and self.rating is not None:
            # Explicit ratings in [0, 5] scale the base factor.
            return base * max(0.0, min(self.rating, 5.0)) / 5.0
        return base


@dataclass
class LearningConfig:
    """Knobs of the learning rule.

    Attributes:
        learning_rate: the α of Figure 4.5.
        preference_rate: how fast the scalar per-category preference moves.
        decay_factor: multiplicative ageing applied to term weights before
            each update batch (1.0 disables ageing).
        max_preference: ceiling of the scalar preference value.
        prune_below: drop terms whose weight falls under this threshold.
    """

    learning_rate: float = 0.3
    preference_rate: float = 0.5
    decay_factor: float = 1.0
    max_preference: float = 10.0
    prune_below: float = 1e-4

    def validate(self) -> None:
        if not 0.0 < self.learning_rate <= 1.0:
            raise ProfileError(f"learning rate must be in (0, 1], got {self.learning_rate}")
        if not 0.0 < self.preference_rate <= 1.0:
            raise ProfileError(
                f"preference rate must be in (0, 1], got {self.preference_rate}"
            )
        if not 0.0 < self.decay_factor <= 1.0:
            raise ProfileError(f"decay factor must be in (0, 1], got {self.decay_factor}")
        if self.max_preference <= 0:
            raise ProfileError("max preference must be positive")
        if self.prune_below < 0:
            raise ProfileError("prune threshold cannot be negative")


#: Signature of a post-update hook: called with the profile that changed and
#: the event that changed it, after the learning rule has been applied.
UpdateHook = Callable[[Profile, "FeedbackEvent"], None]


class ProfileLearner:
    """Applies the Figure 4.5 learning rule to consumer profiles.

    Downstream caches (notably the
    :class:`~repro.core.neighbors.ProfileNeighborIndex`) can register update
    hooks; every applied event fires them once, which is what makes
    incremental cache invalidation precise — only the consumer whose profile
    actually changed is reported.
    """

    def __init__(self, config: Optional[LearningConfig] = None) -> None:
        self.config = config or LearningConfig()
        self.config.validate()
        self.events_applied = 0
        self._update_hooks: List[UpdateHook] = []

    # -- update hooks ----------------------------------------------------------

    def add_update_hook(self, hook: UpdateHook) -> None:
        """Register a callable fired after every applied feedback event."""
        if hook not in self._update_hooks:
            self._update_hooks.append(hook)

    def remove_update_hook(self, hook: UpdateHook) -> None:
        """Unregister a previously added hook (missing hooks are ignored)."""
        if hook in self._update_hooks:
            self._update_hooks.remove(hook)

    # -- single event ---------------------------------------------------------

    def apply(self, profile: Profile, event: FeedbackEvent) -> Profile:
        """Apply one feedback event to ``profile`` in place and return it."""
        if profile.user_id != event.user_id:
            raise ProfileError(
                f"event for user {event.user_id!r} applied to profile of "
                f"{profile.user_id!r}"
            )
        config = self.config
        quality = event.quality()
        item = event.item

        category = profile.category(item.category)
        if config.decay_factor < 1.0:
            category.terms.decay(config.decay_factor)

        # Term update: W_ci_new = W_ci + α · w_ji · quality_of_feedback
        for term, item_weight in item.terms:
            category.terms.add(term, config.learning_rate * item_weight * quality)
        category.terms.prune(config.prune_below)

        # Scalar category preference (the Tx the similarity algorithm compares)
        category.preference = min(
            config.max_preference,
            category.preference + config.preference_rate * quality,
        )

        if item.subcategory:
            sub = category.subcategory(item.subcategory)
            if config.decay_factor < 1.0:
                sub.terms.decay(config.decay_factor)
            for term, item_weight in item.terms:
                sub.terms.add(term, config.learning_rate * item_weight * quality)
            sub.terms.prune(config.prune_below)
            sub.preference = min(
                config.max_preference,
                sub.preference + config.preference_rate * quality,
            )

        profile.updated_at = max(profile.updated_at, event.timestamp)
        profile.feedback_events += 1
        self.events_applied += 1
        for hook in self._update_hooks:
            hook(profile, event)
        return profile

    # -- batches ---------------------------------------------------------------

    def apply_all(self, profile: Profile, events: Iterable[FeedbackEvent]) -> Profile:
        """Apply a batch of events in order."""
        for event in events:
            self.apply(profile, event)
        return profile

    def build_profile(self, user_id: str, events: Iterable[FeedbackEvent]) -> Profile:
        """Build a fresh profile for ``user_id`` from an event history."""
        profile = Profile(user_id)
        return self.apply_all(profile, events)
