"""Hierarchical consumer profiles (Figure 4.4 of the paper).

The paper represents a consumer profile as::

    Profile = <Category, Terms_of_Category, <Sub_Category, Terms_of_Sub_Category>>

i.e. a set of main categories, each carrying a weighted term vector and a set
of sub-categories, each with its own weighted term vector.  On top of the
structure itself, each category carries a scalar *preference value* — the
``Tx`` the similarity algorithm compares when deciding whether two consumers'
tastes for a category are close enough to be worth correlating.

The classes here are plain data with explicit operations; the learning rule
that *changes* the weights lives in :mod:`repro.core.profile_learning` and the
similarity computation in :mod:`repro.core.similarity`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ProfileError

__all__ = ["TermVector", "SubCategory", "Category", "Profile"]


class TermVector:
    """A sparse weighted term vector (terms of a category or sub-category)."""

    def __init__(self, weights: Optional[Dict[str, float]] = None) -> None:
        self._weights: Dict[str, float] = {}
        if weights:
            for term, weight in weights.items():
                self.set(term, weight)

    # -- mutation -------------------------------------------------------------

    def set(self, term: str, weight: float) -> None:
        if not term:
            raise ProfileError("term must be a non-empty string")
        if weight < 0:
            raise ProfileError(f"term {term!r} cannot have a negative weight ({weight})")
        if weight == 0:
            self._weights.pop(term, None)
        else:
            self._weights[term] = float(weight)

    def add(self, term: str, delta: float) -> float:
        """Add ``delta`` to a term's weight, flooring at zero; return new weight."""
        if not term:
            raise ProfileError("term must be a non-empty string")
        updated = max(0.0, self._weights.get(term, 0.0) + delta)
        self.set(term, updated)
        return updated

    def decay(self, factor: float) -> None:
        """Multiply every weight by ``factor`` in (0, 1] (interest ageing)."""
        if not 0.0 < factor <= 1.0:
            raise ProfileError(f"decay factor must be in (0, 1], got {factor}")
        for term in list(self._weights):
            self.set(term, self._weights[term] * factor)

    def prune(self, min_weight: float) -> int:
        """Drop terms below ``min_weight``; return how many were removed."""
        doomed = [term for term, weight in self._weights.items() if weight < min_weight]
        for term in doomed:
            del self._weights[term]
        return len(doomed)

    # -- access ---------------------------------------------------------------

    def get(self, term: str) -> float:
        return self._weights.get(term, 0.0)

    def __contains__(self, term: str) -> bool:
        return term in self._weights

    def __len__(self) -> int:
        return len(self._weights)

    def __bool__(self) -> bool:
        return bool(self._weights)

    def items(self) -> List[Tuple[str, float]]:
        return sorted(self._weights.items())

    def as_dict(self) -> Dict[str, float]:
        return dict(self._weights)

    def terms(self) -> List[str]:
        return sorted(self._weights)

    def top_terms(self, count: int) -> List[Tuple[str, float]]:
        """The ``count`` heaviest terms, ties broken alphabetically."""
        return sorted(self._weights.items(), key=lambda pair: (-pair[1], pair[0]))[:count]

    # -- maths ----------------------------------------------------------------

    def norm(self) -> float:
        return math.sqrt(sum(weight * weight for weight in self._weights.values()))

    def total(self) -> float:
        return sum(self._weights.values())

    def dot(self, other: "TermVector") -> float:
        if len(self._weights) > len(other._weights):
            return other.dot(self)
        return sum(
            weight * other._weights.get(term, 0.0)
            for term, weight in self._weights.items()
        )

    def cosine(self, other: "TermVector") -> float:
        """Cosine similarity with another vector (0 when either is empty)."""
        denominator = self.norm() * other.norm()
        if denominator == 0:
            return 0.0
        return self.dot(other) / denominator

    def merged_with(self, other: "TermVector", weight: float = 1.0) -> "TermVector":
        """A new vector equal to ``self + weight * other``."""
        merged = TermVector(self.as_dict())
        for term, value in other.items():
            merged.add(term, weight * value)
        return merged

    def copy(self) -> "TermVector":
        return TermVector(self.as_dict())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(f"{t}:{w:.2f}" for t, w in self.top_terms(4))
        return f"TermVector({preview}{'...' if len(self) > 4 else ''})"


@dataclass
class SubCategory:
    """A sub-category of a main profile category (Figure 4.4)."""

    name: str
    terms: TermVector = field(default_factory=TermVector)
    preference: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ProfileError("sub-category name must be non-empty")
        if self.preference < 0:
            raise ProfileError("sub-category preference cannot be negative")


@dataclass
class Category:
    """A main profile category with its terms and sub-categories."""

    name: str
    terms: TermVector = field(default_factory=TermVector)
    preference: float = 0.0
    subcategories: Dict[str, SubCategory] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ProfileError("category name must be non-empty")
        if self.preference < 0:
            raise ProfileError("category preference cannot be negative")

    def subcategory(self, name: str, create: bool = True) -> SubCategory:
        """Fetch (and optionally create) a sub-category."""
        if name not in self.subcategories:
            if not create:
                raise ProfileError(
                    f"category {self.name!r} has no sub-category {name!r}"
                )
            self.subcategories[name] = SubCategory(name=name)
        return self.subcategories[name]

    def flattened_terms(self) -> TermVector:
        """Category terms plus all sub-category terms merged into one vector."""
        merged = self.terms.copy()
        for sub in self.subcategories.values():
            merged = merged.merged_with(sub.terms)
        return merged


class Profile:
    """A consumer's full hierarchical profile."""

    def __init__(self, user_id: str) -> None:
        if not user_id:
            raise ProfileError("profile needs a non-empty user id")
        self.user_id = user_id
        self.categories: Dict[str, Category] = {}
        self.updated_at: float = 0.0
        self.feedback_events: int = 0

    # -- structure ------------------------------------------------------------

    def category(self, name: str, create: bool = True) -> Category:
        """Fetch (and optionally create) a main category."""
        if not name:
            raise ProfileError("category name must be non-empty")
        if name not in self.categories:
            if not create:
                raise ProfileError(f"profile {self.user_id!r} has no category {name!r}")
            self.categories[name] = Category(name=name)
        return self.categories[name]

    def has_category(self, name: str) -> bool:
        return name in self.categories

    def category_names(self) -> List[str]:
        return sorted(self.categories)

    def __len__(self) -> int:
        return len(self.categories)

    def is_empty(self) -> bool:
        """A profile with no category carrying any signal (cold-start user)."""
        return all(
            category.preference == 0 and not category.flattened_terms()
            for category in self.categories.values()
        )

    # -- views ----------------------------------------------------------------

    def preference_vector(self) -> Dict[str, float]:
        """Category name → preference value (the ``Tx`` values)."""
        return {name: category.preference for name, category in self.categories.items()}

    def flattened_terms(self) -> TermVector:
        """Every term of every category and sub-category merged into one vector."""
        merged = TermVector()
        for category in self.categories.values():
            merged = merged.merged_with(category.flattened_terms())
        return merged

    def top_categories(self, count: int) -> List[Tuple[str, float]]:
        """The ``count`` categories with the highest preference value."""
        ranked = sorted(
            ((name, category.preference) for name, category in self.categories.items()),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return ranked[:count]

    # -- persistence ----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable snapshot (used by UserDB and deactivation)."""
        return {
            "user_id": self.user_id,
            "updated_at": self.updated_at,
            "feedback_events": self.feedback_events,
            "categories": {
                name: {
                    "preference": category.preference,
                    "terms": category.terms.as_dict(),
                    "subcategories": {
                        sub_name: {
                            "preference": sub.preference,
                            "terms": sub.terms.as_dict(),
                        }
                        for sub_name, sub in category.subcategories.items()
                    },
                }
                for name, category in self.categories.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Profile":
        """Rebuild a profile from :meth:`to_dict` output."""
        try:
            profile = cls(str(payload["user_id"]))
            profile.updated_at = float(payload.get("updated_at", 0.0))
            profile.feedback_events = int(payload.get("feedback_events", 0))
            categories = payload.get("categories", {})
        except (KeyError, TypeError, ValueError) as exc:
            raise ProfileError(f"malformed profile payload: {exc}") from exc
        for name, data in categories.items():  # type: ignore[union-attr]
            category = profile.category(name)
            category.preference = float(data.get("preference", 0.0))
            category.terms = TermVector(dict(data.get("terms", {})))
            for sub_name, sub_data in data.get("subcategories", {}).items():
                sub = category.subcategory(sub_name)
                sub.preference = float(sub_data.get("preference", 0.0))
                sub.terms = TermVector(dict(sub_data.get("terms", {})))
        return profile

    def copy(self) -> "Profile":
        return Profile.from_dict(self.to_dict())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Profile(user={self.user_id!r}, categories={len(self.categories)}, "
            f"events={self.feedback_events})"
        )
