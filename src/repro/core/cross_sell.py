"""Tied-sale / cross-sell recommendations (§2.3 "Cross-sell", §5.2 item 2).

"A site might recommend additional products in the checkout process, based on
those products already in the shopping cart."  The recommender mines item
co-purchase counts from the ratings store and, given the consumer's purchase
history (or an explicit basket), suggests the items most often bought together
with them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.items import ItemCatalogView
from repro.core.ratings import InteractionKind, RatingsStore
from repro.core.recommender import Recommendation, Recommender

__all__ = ["CrossSellRecommender"]


class CrossSellRecommender(Recommender):
    """Recommend items frequently co-purchased with what the consumer bought."""

    name = "cross-sell"

    def __init__(
        self,
        ratings: RatingsStore,
        catalog: Optional[ItemCatalogView] = None,
        min_support: int = 1,
    ) -> None:
        self.ratings = ratings
        self.catalog = catalog
        self.min_support = max(1, int(min_support))

    def _basket_of(self, user_id: str) -> Set[str]:
        return {
            interaction.item_id
            for interaction in self.ratings.interactions_of(user_id)
            if interaction.kind is InteractionKind.BUY
        }

    def _eligible(self, item_id: str, category: Optional[str]) -> bool:
        if category is None or self.catalog is None:
            return True
        return item_id in self.catalog and self.catalog.get(item_id).category == category

    def can_recommend(self, user_id: str) -> bool:
        return bool(self._basket_of(user_id))

    def recommend_for_basket(
        self,
        basket: Sequence[str],
        k: int = 10,
        category: Optional[str] = None,
        exclude: Iterable[str] = (),
    ) -> List[Recommendation]:
        """Checkout-time recommendations for an explicit basket of item ids."""
        excluded = set(exclude) | set(basket)
        co_counts = self.ratings.co_purchases()
        scores: Dict[str, int] = {}
        for (first, second), count in co_counts.items():
            if count < self.min_support:
                continue
            if first in basket and second not in excluded:
                scores[second] = scores.get(second, 0) + count
            if second in basket and first not in excluded:
                scores[first] = scores.get(first, 0) + count

        recommendations = [
            Recommendation(
                item_id=item_id,
                score=float(count),
                source=self.name,
                reason=f"bought together with items in your basket {count} times",
            )
            for item_id, count in scores.items()
            if self._eligible(item_id, category)
        ]
        recommendations.sort(key=lambda rec: (-rec.score, rec.item_id))
        return recommendations[:k]

    def recommend(
        self,
        user_id: str,
        k: int = 10,
        category: Optional[str] = None,
        exclude: Iterable[str] = (),
    ) -> List[Recommendation]:
        basket = sorted(self._basket_of(user_id))
        if not basket:
            return []
        return self.recommend_for_basket(basket, k=k, category=category, exclude=exclude)
