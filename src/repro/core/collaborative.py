"""User-user collaborative filtering (the CF technique of §2.3).

"These systems build a database of user opinions of available items.  They
use the database to find users whose opinions are similar (i.e., those that
are highly correlated) and make predictions of user opinion on an item by
combining the opinions of other likeminded individuals."

The implementation is the classic user-kNN recommender over the observational
ratings store: neighbours are ranked by Pearson correlation (or cosine) of
their item-value vectors, and an unseen item's predicted value is the
similarity-weighted average of the neighbours' values for it.  It exhibits
the sparsity and cold-start limitations the paper discusses, which the
benchmark harness measures explicitly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import RecommendationError
from repro.core.items import ItemCatalogView
from repro.core.ratings import RatingsStore
from repro.core.recommender import Recommendation, Recommender
from repro.core.similarity import cosine_similarity, pearson_correlation

__all__ = ["CollaborativeFilteringRecommender"]


class CollaborativeFilteringRecommender(Recommender):
    """User-kNN collaborative filtering over the ratings store."""

    name = "collaborative-filtering"

    def __init__(
        self,
        ratings: RatingsStore,
        catalog: Optional[ItemCatalogView] = None,
        neighbours: int = 20,
        similarity: str = "pearson",
        min_overlap: int = 1,
    ) -> None:
        if neighbours <= 0:
            raise RecommendationError("neighbour count must be positive")
        if similarity not in ("pearson", "cosine"):
            raise RecommendationError(
                f"unknown similarity {similarity!r}; expected 'pearson' or 'cosine'"
            )
        if min_overlap < 1:
            raise RecommendationError("min_overlap must be at least 1")
        self.ratings = ratings
        self.catalog = catalog
        self.neighbours = neighbours
        self.similarity = similarity
        self.min_overlap = min_overlap
        # Both caches are stamped with ratings.revision: any interaction
        # added or removed bumps the stamp, so stale entries are never served.
        self._vector_cache: Optional[Tuple[int, Dict[str, Dict[str, float]]]] = None
        self._neighbourhood_cache: Dict[str, Tuple[int, List[Tuple[str, float]]]] = {}

    # -- neighbourhood ---------------------------------------------------------

    def _user_similarity(self, left: Dict[str, float], right: Dict[str, float]) -> float:
        if self.similarity == "pearson":
            return pearson_correlation(left, right)
        return cosine_similarity(left, right)

    def _vectors(self) -> Dict[str, Dict[str, float]]:
        """All user vectors, copied out of the store once per ratings state."""
        stamp = self.ratings.revision
        if self._vector_cache is None or self._vector_cache[0] != stamp:
            self._vector_cache = (
                stamp,
                {user: self.ratings.user_vector(user) for user in self.ratings.users},
            )
        return self._vector_cache[1]

    def neighbourhood(self, user_id: str) -> List[Tuple[str, float]]:
        """The ``neighbours`` most similar users with positive similarity."""
        stamp = self.ratings.revision
        cached = self._neighbourhood_cache.get(user_id)
        if cached is not None and cached[0] == stamp:
            return list(cached[1])
        vectors = self._vectors()
        target_vector = vectors.get(user_id) or self.ratings.user_vector(user_id)
        if not target_vector:
            self._neighbourhood_cache[user_id] = (stamp, [])
            return []
        scored: List[Tuple[str, float]] = []
        for other, other_vector in vectors.items():
            if other == user_id:
                continue
            overlap = sum(1 for item in target_vector if item in other_vector)
            if overlap < self.min_overlap:
                continue
            score = self._user_similarity(target_vector, other_vector)
            if score > 0:
                scored.append((other, score))
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        result = scored[: self.neighbours]
        self._neighbourhood_cache[user_id] = (stamp, result)
        return list(result)

    # -- prediction -------------------------------------------------------------

    def predict(self, user_id: str, item_id: str) -> float:
        """Predicted preference value of ``user_id`` for ``item_id``."""
        observed = self.ratings.value(user_id, item_id)
        if observed:
            return observed
        neighbourhood = self.neighbourhood(user_id)
        numerator = 0.0
        denominator = 0.0
        for neighbour, similarity in neighbourhood:
            value = self.ratings.value(neighbour, item_id)
            if value:
                numerator += similarity * value
                denominator += abs(similarity)
        if denominator == 0.0:
            return 0.0
        return numerator / denominator

    def can_recommend(self, user_id: str) -> bool:
        """CF has signal only when the user has interactions *and* neighbours."""
        return bool(self.ratings.user_vector(user_id)) and bool(self.neighbourhood(user_id))

    def recommend(
        self,
        user_id: str,
        k: int = 10,
        category: Optional[str] = None,
        exclude: Iterable[str] = (),
    ) -> List[Recommendation]:
        excluded = set(exclude)
        seen = set(self.ratings.items_of(user_id))
        neighbourhood = self.neighbourhood(user_id)
        if not neighbourhood:
            return []

        # Candidate items: everything the neighbourhood interacted with.
        scores: Dict[str, float] = {}
        weights: Dict[str, float] = {}
        for neighbour, similarity in neighbourhood:
            for item_id, value in self.ratings.user_vector(neighbour).items():
                if item_id in seen or item_id in excluded:
                    continue
                if category is not None and self.catalog is not None:
                    if item_id in self.catalog and self.catalog.get(item_id).category != category:
                        continue
                scores[item_id] = scores.get(item_id, 0.0) + similarity * value
                weights[item_id] = weights.get(item_id, 0.0) + abs(similarity)

        recommendations = [
            Recommendation(
                item_id=item_id,
                score=scores[item_id] / weights[item_id],
                source=self.name,
                reason=f"liked by {len(neighbourhood)} similar consumers",
            )
            for item_id in scores
            if weights[item_id] > 0
        ]
        recommendations.sort(key=lambda rec: (-rec.score, rec.item_id))
        return recommendations[:k]
