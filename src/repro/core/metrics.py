"""Recommendation-quality metrics used by the evaluation harness.

The paper claims its mechanism "can generate recommendation information to
consumers from the applied similarity algorithms" but reports no numbers, so
the benchmark harness quantifies recommendation quality with the standard
metrics of the recommender-systems literature the paper cites (Schafer et al.,
Good et al.): precision/recall/F1 at k, hit rate, NDCG, mean absolute error of
predicted preferences, catalogue coverage and rank correlation against the
consumers' true latent preferences.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

__all__ = [
    "precision_at_k",
    "recall_at_k",
    "f1_at_k",
    "hit_rate_at_k",
    "average_precision",
    "ndcg_at_k",
    "mean_absolute_error",
    "root_mean_squared_error",
    "catalog_coverage",
    "spearman_rank_correlation",
    "kendall_tau",
]


def _top_k(recommended: Sequence[str], k: int) -> List[str]:
    if k <= 0:
        raise ValueError("k must be positive")
    return list(recommended[:k])


def precision_at_k(recommended: Sequence[str], relevant: Iterable[str], k: int) -> float:
    """Fraction of the top-k recommendations that are relevant."""
    top = _top_k(recommended, k)
    if not top:
        return 0.0
    relevant_set = set(relevant)
    hits = sum(1 for item in top if item in relevant_set)
    return hits / float(len(top))


def recall_at_k(recommended: Sequence[str], relevant: Iterable[str], k: int) -> float:
    """Fraction of the relevant items that appear in the top-k recommendations."""
    relevant_set = set(relevant)
    if not relevant_set:
        return 0.0
    top = _top_k(recommended, k)
    hits = sum(1 for item in top if item in relevant_set)
    return hits / float(len(relevant_set))


def f1_at_k(recommended: Sequence[str], relevant: Iterable[str], k: int) -> float:
    """Harmonic mean of precision@k and recall@k."""
    relevant_set = set(relevant)
    precision = precision_at_k(recommended, relevant_set, k)
    recall = recall_at_k(recommended, relevant_set, k)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def hit_rate_at_k(recommended: Sequence[str], relevant: Iterable[str], k: int) -> float:
    """1.0 when at least one relevant item appears in the top-k, else 0.0."""
    relevant_set = set(relevant)
    return 1.0 if any(item in relevant_set for item in _top_k(recommended, k)) else 0.0


def average_precision(recommended: Sequence[str], relevant: Iterable[str]) -> float:
    """Average precision over the full recommendation list."""
    relevant_set = set(relevant)
    if not relevant_set:
        return 0.0
    hits = 0
    precision_sum = 0.0
    for index, item in enumerate(recommended, start=1):
        if item in relevant_set:
            hits += 1
            precision_sum += hits / float(index)
    if hits == 0:
        return 0.0
    return precision_sum / float(min(len(relevant_set), len(recommended)))


def ndcg_at_k(recommended: Sequence[str], relevant: Iterable[str], k: int) -> float:
    """Normalised discounted cumulative gain with binary relevance."""
    relevant_set = set(relevant)
    if not relevant_set:
        return 0.0
    top = _top_k(recommended, k)
    dcg = sum(
        1.0 / math.log2(index + 1)
        for index, item in enumerate(top, start=1)
        if item in relevant_set
    )
    ideal_hits = min(len(relevant_set), k)
    ideal = sum(1.0 / math.log2(index + 1) for index in range(1, ideal_hits + 1))
    if ideal == 0.0:
        return 0.0
    return dcg / ideal


def mean_absolute_error(
    predictions: Mapping[str, float], truths: Mapping[str, float]
) -> float:
    """MAE over the keys present in both mappings; 0 when nothing overlaps."""
    common = [key for key in predictions if key in truths]
    if not common:
        return 0.0
    return sum(abs(predictions[key] - truths[key]) for key in common) / len(common)


def root_mean_squared_error(
    predictions: Mapping[str, float], truths: Mapping[str, float]
) -> float:
    """RMSE over the keys present in both mappings; 0 when nothing overlaps."""
    common = [key for key in predictions if key in truths]
    if not common:
        return 0.0
    return math.sqrt(
        sum((predictions[key] - truths[key]) ** 2 for key in common) / len(common)
    )


def catalog_coverage(
    recommendation_lists: Iterable[Sequence[str]], catalog_size: int
) -> float:
    """Fraction of the catalogue that appears in at least one recommendation list."""
    if catalog_size <= 0:
        raise ValueError("catalog size must be positive")
    covered: Set[str] = set()
    for recommendations in recommendation_lists:
        covered.update(recommendations)
    return min(1.0, len(covered) / float(catalog_size))


def _ranks(values: Sequence[float]) -> List[float]:
    """Fractional ranks (average rank for ties), 1-based."""
    order = sorted(range(len(values)), key=lambda index: values[index])
    ranks = [0.0] * len(values)
    position = 0
    while position < len(order):
        tail = position
        while (
            tail + 1 < len(order)
            and values[order[tail + 1]] == values[order[position]]
        ):
            tail += 1
        average_rank = (position + tail) / 2.0 + 1.0
        for index in range(position, tail + 1):
            ranks[order[index]] = average_rank
        position = tail + 1
    return ranks


def spearman_rank_correlation(
    left: Mapping[str, float], right: Mapping[str, float]
) -> float:
    """Spearman correlation over the shared keys; 0 with fewer than 2 shared keys."""
    common = sorted(key for key in left if key in right)
    if len(common) < 2:
        return 0.0
    left_ranks = _ranks([left[key] for key in common])
    right_ranks = _ranks([right[key] for key in common])
    mean_left = sum(left_ranks) / len(left_ranks)
    mean_right = sum(right_ranks) / len(right_ranks)
    numerator = sum(
        (a - mean_left) * (b - mean_right) for a, b in zip(left_ranks, right_ranks)
    )
    var_left = sum((a - mean_left) ** 2 for a in left_ranks)
    var_right = sum((b - mean_right) ** 2 for b in right_ranks)
    if var_left == 0.0 or var_right == 0.0:
        return 0.0
    return numerator / math.sqrt(var_left * var_right)


def kendall_tau(left: Mapping[str, float], right: Mapping[str, float]) -> float:
    """Kendall's tau-a over the shared keys; 0 with fewer than 2 shared keys."""
    common = sorted(key for key in left if key in right)
    if len(common) < 2:
        return 0.0
    concordant = 0
    discordant = 0
    for i in range(len(common)):
        for j in range(i + 1, len(common)):
            a = left[common[i]] - left[common[j]]
            b = right[common[i]] - right[common[j]]
            product = a * b
            if product > 0:
                concordant += 1
            elif product < 0:
                discordant += 1
    pairs = len(common) * (len(common) - 1) / 2.0
    return (concordant - discordant) / pairs
