"""Versioned shard map: the single source of truth for shard ownership.

Before this module, knowledge of "which server owns which partition of the
consumer community" was duplicated across the fleet's ``_shard_owner`` list,
the coordinator agent's ``shard_map`` dict, the replication ring wiring and
the gateway's routing — and a promotion failover mutated them all in
lockstep by hand.  :class:`ShardMap` makes that knowledge first-class:

- an **epoch number**, bumped atomically on every topology change, that
  consumers (fleet routing, the gateway's route cache, the coordinator's
  domain registry) can key caches and sync decisions on;
- the **shard → owner** assignment itself, keyed by server *name* so the
  map never dereferences a server object (and therefore never reads dead
  memory);
- a **per-shard migration state machine** (``steady`` / ``migrating`` with
  a typed :class:`ShardMigration` record) so an in-flight handback or
  split is visible to every layer instead of being a private loop
  variable;
- **split lineage**: when a hot shard splits, the child shard ids and the
  per-split membership choice are recorded here, so routing a consumer
  through one or more historical splits is a pure deterministic function
  of this map — any two replicas of the map route identically.

The map is a plain in-memory structure with no clock, network or metrics
dependencies: mutating it is free of simulation side effects, which is
what lets the fleet keep its byte-identity guarantees (an idle map is
byte-invisible; only the elastic *operations* that use it touch the
simulated world).

Shard ids are dense: ``0 .. num_shards-1``, with splits appending
``num_shards`` — so callers may keep indexing per-shard arrays by id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.errors import ShardMapError
from repro.core.sharding import _stable_hash

__all__ = [
    "SHARD_STEADY",
    "SHARD_MIGRATING",
    "ShardMigration",
    "ShardMap",
    "split_membership",
]

#: Shard states.  ``steady`` shards are served by their owner with no
#: transfer in flight; ``migrating`` shards have a :class:`ShardMigration`
#: record attached (a handback awaiting its atomic flip, or a split child
#: still receiving its movers).
SHARD_STEADY = "steady"
SHARD_MIGRATING = "migrating"


def split_membership(user_id: str, parent: int, split_index: int) -> bool:
    """Whether ``user_id`` moves to the child of split ``split_index`` of ``parent``.

    The deterministic membership function behind live shard splitting: a
    stable hash over the consumer id, the parent shard id and the ordinal
    of the split (a shard can split more than once; each split re-cuts the
    *remaining* community).  Pure and stateless so the migration loop, the
    routing path and any reference reimplementation agree byte for byte.
    """
    return _stable_hash(f"{user_id}|split|{parent}|{split_index}") % 2 == 1


@dataclass(frozen=True)
class ShardMigration:
    """One in-flight ownership change of a single shard.

    ``kind`` is free-form provenance ("handback", "split", "scale-in", ...);
    what matters mechanically is ``flip_on_commit``: a handback keeps the
    source as owner until the atomic commit flips ownership to ``target``,
    while a split child is owned by its target from the start (movers land
    on it one by one) and commit merely marks it steady.
    """

    shard: int
    kind: str
    source: str
    target: str
    started_epoch: int
    flip_on_commit: bool = True


class ShardMap:
    """Epoch-versioned shard → owner assignments with migration states.

    Listeners subscribe with :meth:`subscribe` and are invoked as
    ``listener(shard_map, reason, shards)`` after every epoch bump; the
    ``reason`` string ("promote", "migration-begin", "migration-commit",
    "migration-abort", "split-begin", ...) lets a listener distinguish the
    existing failover path (which already syncs the coordinator through its
    own message) from the elastic operations that need a fresh sync.
    """

    def __init__(self, owners: Union[Mapping[int, str], Iterable[str]]) -> None:
        if isinstance(owners, Mapping):
            assignments = {int(shard): str(owner) for shard, owner in owners.items()}
        else:
            assignments = {index: str(owner) for index, owner in enumerate(owners)}
        if not assignments:
            raise ShardMapError("a shard map needs at least one shard")
        if sorted(assignments) != list(range(len(assignments))):
            raise ShardMapError(
                f"shard ids must be dense 0..n-1, got {sorted(assignments)}"
            )
        self._owners: Dict[int, str] = dict(sorted(assignments.items()))
        self._states: Dict[int, str] = {shard: SHARD_STEADY for shard in self._owners}
        self._migrations: Dict[int, ShardMigration] = {}
        #: parent shard id → child shard ids, in split order.  Routing
        #: replays the splits through :func:`split_membership`.
        self._splits: Dict[int, List[int]] = {}
        self._parents: Dict[int, int] = {}
        self.epoch: int = 1
        self._listeners: List[Callable[["ShardMap", str, Tuple[int, ...]], None]] = []

    # -- read side -----------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self._owners)

    def shard_ids(self) -> List[int]:
        return list(self._owners)

    def owner_of(self, shard: int) -> str:
        self._require(shard)
        return self._owners[shard]

    def shards_of(self, owner: str) -> List[int]:
        """Every shard ``owner`` currently serves (empty for retired hosts)."""
        return [shard for shard, name in self._owners.items() if name == owner]

    def owners(self) -> List[str]:
        """Distinct serving owners, in first-shard order (stable, not sorted)."""
        seen: List[str] = []
        for name in self._owners.values():
            if name not in seen:
                seen.append(name)
        return seen

    def state_of(self, shard: int) -> str:
        self._require(shard)
        return self._states[shard]

    def migration_of(self, shard: int) -> Optional[ShardMigration]:
        self._require(shard)
        return self._migrations.get(shard)

    def migrating(self) -> Dict[int, ShardMigration]:
        """Every in-flight migration, keyed by shard id."""
        return dict(self._migrations)

    def splits_of(self, parent: int) -> Tuple[int, ...]:
        """Child shard ids created by splitting ``parent``, in split order."""
        self._require(parent)
        return tuple(self._splits.get(parent, ()))

    def parent_of(self, shard: int) -> Optional[int]:
        """The shard this one was split from, or ``None`` for a base shard."""
        self._require(shard)
        return self._parents.get(shard)

    def route(self, user_id: str, base_shard: int) -> int:
        """Replay ``base_shard`` through the recorded split lineage.

        Deterministic: every decision is :func:`split_membership` over the
        consumer id and the split's identity, so a newly routed consumer and
        the migration loop that moved an existing one always agree.
        """
        shard = base_shard
        self._require(shard)
        moved = True
        while moved:
            moved = False
            for index, child in enumerate(self._splits.get(shard, ())):
                if split_membership(user_id, shard, index):
                    shard = child
                    moved = True
                    break
        return shard

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly snapshot (sorted, stable) for stats and the CA."""
        return {
            "epoch": self.epoch,
            "num_shards": self.num_shards,
            "assignments": {shard: owner for shard, owner in sorted(self._owners.items())},
            "states": {shard: state for shard, state in sorted(self._states.items())},
            "migrations": {
                shard: {
                    "kind": migration.kind,
                    "source": migration.source,
                    "target": migration.target,
                    "started_epoch": migration.started_epoch,
                }
                for shard, migration in sorted(self._migrations.items())
            },
            "splits": {parent: list(children) for parent, children in sorted(self._splits.items())},
        }

    # -- write side ----------------------------------------------------------------

    def subscribe(self, listener: Callable[["ShardMap", str, Tuple[int, ...]], None]) -> None:
        self._listeners.append(listener)

    def reassign(self, shards: Iterable[int], owner: str, reason: str = "assign") -> None:
        """Move ``shards`` to ``owner`` in one atomic epoch bump.

        The promotion-failover path: a dead server's shards all flip to the
        promoted replica holder at once, observers see a single new epoch.
        In-flight migrations on those shards follow the new owner — a crash
        mid-split reassigns the child to the promoted server and the split
        simply continues against it.
        """
        shards = tuple(shards)
        for shard in shards:
            self._require(shard)
        if not shards:
            return
        for shard in shards:
            self._owners[shard] = owner
            migration = self._migrations.get(shard)
            if migration is not None and migration.target != owner:
                self._migrations[shard] = ShardMigration(
                    shard=shard,
                    kind=migration.kind,
                    source=migration.source,
                    target=owner,
                    started_epoch=migration.started_epoch,
                    flip_on_commit=migration.flip_on_commit,
                )
        self._bump(reason, shards)

    def begin_migration(self, shard: int, kind: str, target: str) -> ShardMigration:
        """Mark ``shard`` migrating toward ``target`` (owner unchanged until commit)."""
        self._require(shard)
        if shard in self._migrations:
            raise ShardMapError(
                f"shard {shard} already has a migration in flight "
                f"({self._migrations[shard].kind!r})"
            )
        migration = ShardMigration(
            shard=shard,
            kind=kind,
            source=self._owners[shard],
            target=target,
            started_epoch=self.epoch,
            flip_on_commit=True,
        )
        self._migrations[shard] = migration
        self._states[shard] = SHARD_MIGRATING
        self._bump("migration-begin", (shard,))
        return migration

    def begin_split(self, parent: int, owner: str, source: str) -> int:
        """Create the child shard of a split of ``parent``, owned by ``owner``.

        The child is born ``migrating`` (its movers arrive one at a time)
        but *owned* from the start — queries for consumers already moved
        route to it immediately.  Returns the new shard id (always
        ``num_shards`` before the call: ids stay dense).  The split lineage
        is recorded before any consumer moves, so registrations racing the
        migration route exactly like the movers themselves.
        """
        self._require(parent)
        child = self.num_shards
        self._owners[child] = owner
        self._states[child] = SHARD_MIGRATING
        self._migrations[child] = ShardMigration(
            shard=child,
            kind="split",
            source=source,
            target=owner,
            started_epoch=self.epoch,
            flip_on_commit=False,
        )
        self._splits.setdefault(parent, []).append(child)
        self._parents[child] = parent
        self._bump("split-begin", (parent, child))
        return child

    def commit_migration(self, shard: int) -> ShardMigration:
        """Finish ``shard``'s migration: flip ownership (handback) and go steady."""
        self._require(shard)
        migration = self._migrations.pop(shard, None)
        if migration is None:
            raise ShardMapError(f"shard {shard} has no migration to commit")
        if migration.flip_on_commit:
            self._owners[shard] = migration.target
        self._states[shard] = SHARD_STEADY
        self._bump("migration-commit", (shard,))
        return migration

    def abort_migration(self, shard: int) -> ShardMigration:
        """Abandon ``shard``'s migration: ownership stays where it is now."""
        self._require(shard)
        migration = self._migrations.pop(shard, None)
        if migration is None:
            raise ShardMapError(f"shard {shard} has no migration to abort")
        self._states[shard] = SHARD_STEADY
        self._bump("migration-abort", (shard,))
        return migration

    # -- internals -----------------------------------------------------------------

    def _require(self, shard: int) -> None:
        if shard not in self._owners:
            raise ShardMapError(f"{shard} is not a shard of this map")

    def _bump(self, reason: str, shards: Tuple[int, ...]) -> None:
        self.epoch += 1
        for listener in list(self._listeners):
            listener(self, reason, shards)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShardMap(epoch={self.epoch}, shards={self.num_shards}, "
            f"owners={self._owners!r}, migrating={sorted(self._migrations)})"
        )
