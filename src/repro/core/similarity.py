"""The similarity algorithm (Figure 4.5 of the paper).

Recommendation generation starts by finding the consumers whose profiles are
most similar to the active consumer's.  The paper's rule has two parts:

1. a similarity value over the two profiles — "the higher similarity value
   means that consumer X is more similar to consumer Y";
2. a **discard rule** — "if Consumer X's preference merchandise item value Tx
   [is] different from other consumer Y's preference merchandise item value
   Ty, the similarity result will be discarded", i.e. candidates whose
   preference for the category at hand differs by more than a tolerance are
   dropped outright, however similar the rest of their profile looks.

The similarity value itself combines the cosine similarity of the two
category-preference vectors with the cosine similarity of the flattened term
vectors; the mix is configurable through :class:`SimilarityConfig` so the
ablation benchmark can study either extreme.

:func:`find_similar_users` is the brute-force reference implementation — it
rescans and re-flattens every stored profile per query.  The production path
is :mod:`repro.core.neighbors`, which serves the same ranked list (score
identical) from precomputed caches with discard-rule pruning up front.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import SimilarityError
from repro.core.profile import Profile

__all__ = [
    "SimilarityConfig",
    "cosine_similarity",
    "cosine_similarity_cached",
    "vector_norm",
    "pearson_correlation",
    "profile_similarity",
    "find_similar_users",
]


# ---------------------------------------------------------------------------
# Vector similarities
# ---------------------------------------------------------------------------


def cosine_similarity(left: Mapping[str, float], right: Mapping[str, float]) -> float:
    """Cosine similarity between two sparse vectors given as dicts.

    The function is symmetric: ``cosine_similarity(a, b)`` equals
    ``cosine_similarity(b, a)`` exactly.  Internally the smaller dict is
    iterated for the dot product — the ``left``/``right`` swap below — which
    is purely an efficiency choice: the dot product pairs the same terms
    either way and the norm product is commutative, so the swap never changes
    the result (``tests/unit/test_similarity.py`` pins this down).  The
    indexed search in :mod:`repro.core.neighbors` replicates this exact
    evaluation order over cached vectors to stay bit-identical.
    """
    if not left or not right:
        return 0.0
    if len(left) > len(right):
        left, right = right, left
    dot = sum(value * right.get(key, 0.0) for key, value in left.items())
    norm_left = math.sqrt(sum(value * value for value in left.values()))
    norm_right = math.sqrt(sum(value * value for value in right.values()))
    if norm_left == 0.0 or norm_right == 0.0:
        return 0.0
    return dot / (norm_left * norm_right)


def vector_norm(vector: Mapping[str, float]) -> float:
    """Euclidean norm, summed in the same order :func:`cosine_similarity` uses."""
    return math.sqrt(sum(value * value for value in vector.values()))


def cosine_similarity_cached(
    left: Mapping[str, float],
    left_norm: float,
    right: Mapping[str, float],
    right_norm: float,
) -> float:
    """Cosine over vectors with precomputed norms, bit-identical to
    :func:`cosine_similarity`.

    The plain helper iterates the smaller dict for the dot product and divides
    by ``norm(smaller) * norm(larger)``; the same swap and the same operand
    pairing are reproduced here so scores match exactly.  Callers that hold a
    vector across many comparisons (the neighbor index, the query re-ranking
    path) pay for each norm once instead of once per pair.
    """
    if not left or not right:
        return 0.0
    if len(left) > len(right):
        left, left_norm, right, right_norm = right, right_norm, left, left_norm
    if left_norm == 0.0 or right_norm == 0.0:
        return 0.0
    dot = sum(value * right.get(key, 0.0) for key, value in left.items())
    return dot / (left_norm * right_norm)


def pearson_correlation(left: Mapping[str, float], right: Mapping[str, float]) -> float:
    """Pearson correlation over the keys the two vectors share.

    This is the classic user-user collaborative filtering similarity (§2.3:
    "find users whose opinions are similar, i.e. those that are highly
    correlated").  Returns 0 when fewer than two keys overlap or when either
    side has zero variance.
    """
    common = [key for key in left if key in right]
    if len(common) < 2:
        return 0.0
    left_values = [left[key] for key in common]
    right_values = [right[key] for key in common]
    mean_left = sum(left_values) / len(left_values)
    mean_right = sum(right_values) / len(right_values)
    numerator = sum(
        (a - mean_left) * (b - mean_right) for a, b in zip(left_values, right_values)
    )
    var_left = sum((a - mean_left) ** 2 for a in left_values)
    var_right = sum((b - mean_right) ** 2 for b in right_values)
    if var_left == 0.0 or var_right == 0.0:
        return 0.0
    # Take the roots before multiplying: var_left * var_right can underflow
    # to 0.0 for tiny but nonzero variances (weights around 1e-107), which
    # would turn the division into a ZeroDivisionError.  The product of the
    # roots can still underflow for truly degenerate inputs, so guard it.
    denominator = math.sqrt(var_left) * math.sqrt(var_right)
    if denominator == 0.0:
        return 0.0
    return numerator / denominator


# ---------------------------------------------------------------------------
# Profile similarity
# ---------------------------------------------------------------------------


@dataclass
class SimilarityConfig:
    """Knobs of the profile similarity computation.

    Attributes:
        preference_weight: weight of the category-preference cosine term.
        term_weight: weight of the flattened-term cosine term.
        discard_tolerance: maximum allowed |Tx - Ty| for the category at hand
            before the candidate is discarded (the Figure 4.5 discard rule).
        min_similarity: candidates below this similarity are never returned.
        top_k: how many similar users to keep.
    """

    preference_weight: float = 0.6
    term_weight: float = 0.4
    discard_tolerance: float = 3.0
    min_similarity: float = 0.05
    top_k: int = 10

    def validate(self) -> None:
        if self.preference_weight < 0 or self.term_weight < 0:
            raise SimilarityError("similarity weights cannot be negative")
        if self.preference_weight + self.term_weight <= 0:
            raise SimilarityError("at least one similarity weight must be positive")
        if self.discard_tolerance < 0:
            raise SimilarityError("discard tolerance cannot be negative")
        if not 0.0 <= self.min_similarity <= 1.0:
            raise SimilarityError("min similarity must be in [0, 1]")
        if self.top_k <= 0:
            raise SimilarityError("top_k must be positive")


def profile_similarity(
    target: Profile,
    candidate: Profile,
    config: Optional[SimilarityConfig] = None,
) -> float:
    """Similarity in [0, 1] between two consumer profiles.

    The value is the weighted average of (a) the cosine similarity of the two
    category-preference vectors and (b) the cosine similarity of the two
    flattened term vectors.  Profiles with no signal at all yield 0.
    """
    config = config or SimilarityConfig()
    config.validate()

    preference_part = cosine_similarity(
        target.preference_vector(), candidate.preference_vector()
    )
    term_part = cosine_similarity(
        target.flattened_terms().as_dict(), candidate.flattened_terms().as_dict()
    )
    total_weight = config.preference_weight + config.term_weight
    score = (
        config.preference_weight * preference_part + config.term_weight * term_part
    ) / total_weight
    # Cosine of non-negative vectors is already in [0, 1]; clamp for safety.
    return max(0.0, min(1.0, score))


def _passes_discard_rule(
    target: Profile, candidate: Profile, category: str, tolerance: float
) -> bool:
    """Figure 4.5 discard rule on the scalar category preference values."""
    target_value = target.preference_vector().get(category, 0.0)
    candidate_value = candidate.preference_vector().get(category, 0.0)
    return abs(target_value - candidate_value) <= tolerance


def find_similar_users(
    target: Profile,
    candidates: Iterable[Profile],
    config: Optional[SimilarityConfig] = None,
    category: Optional[str] = None,
) -> List[Tuple[str, float]]:
    """Rank other consumers by profile similarity to ``target``.

    Args:
        target: the active consumer's profile.
        candidates: profiles of the other consumers in UserDB.
        config: similarity configuration (defaults used when omitted).
        category: when given, the Figure 4.5 discard rule is applied for this
            merchandise category: candidates whose preference value for it
            differs from the target's by more than ``discard_tolerance`` are
            dropped before ranking.

    Returns:
        At most ``config.top_k`` ``(user_id, similarity)`` pairs, sorted by
        decreasing similarity (ties broken by user id for determinism).  The
        target itself is never included.
    """
    config = config or SimilarityConfig()
    config.validate()

    scored: List[Tuple[str, float]] = []
    for candidate in candidates:
        if candidate.user_id == target.user_id:
            continue
        if category is not None and not _passes_discard_rule(
            target, candidate, category, config.discard_tolerance
        ):
            continue
        score = profile_similarity(target, candidate, config)
        if score >= config.min_similarity:
            scored.append((candidate.user_id, score))

    scored.sort(key=lambda pair: (-pair[1], pair[0]))
    return scored[: config.top_k]
