"""Cold-start and sparsity handling (§2.3).

"For a CF system to work well, several users must evaluate each item; even
then, new items cannot be recommended until some users have taken the time to
evaluate them.  These limitations [are] often referred to as the sparsity and
cold-start problems."

The paper's mechanism sidesteps cold-start by combining the consumer's own
profile (information filtering keeps working with zero other users) with the
similar-user lookup.  :class:`ColdStartPolicy` makes the fallback chain
explicit and measurable: the quality benchmark runs the hybrid with different
policies to show how much each fallback contributes when data is scarce.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ColdStartError, RecommendationError
from repro.core.recommender import Recommendation, Recommender

__all__ = ["ColdStartStrategy", "ColdStartPolicy"]


class ColdStartStrategy(enum.Enum):
    """What to do when the primary recommender has no signal for a user."""

    NONE = "none"                     # return an empty list
    POPULARITY = "popularity"         # fall back to top sellers
    CONTENT = "content"               # fall back to information filtering
    CONTENT_THEN_POPULARITY = "content-then-popularity"


@dataclass
class ColdStartPolicy:
    """A fallback chain evaluated when the primary recommender comes up empty."""

    strategy: ColdStartStrategy = ColdStartStrategy.CONTENT_THEN_POPULARITY
    content_recommender: Optional[Recommender] = None
    popularity_recommender: Optional[Recommender] = None

    def validate(self) -> None:
        needs_content = self.strategy in (
            ColdStartStrategy.CONTENT,
            ColdStartStrategy.CONTENT_THEN_POPULARITY,
        )
        needs_popularity = self.strategy in (
            ColdStartStrategy.POPULARITY,
            ColdStartStrategy.CONTENT_THEN_POPULARITY,
        )
        if needs_content and self.content_recommender is None:
            raise RecommendationError(
                f"cold-start strategy {self.strategy.value!r} needs a content recommender"
            )
        if needs_popularity and self.popularity_recommender is None:
            raise RecommendationError(
                f"cold-start strategy {self.strategy.value!r} needs a popularity recommender"
            )

    def chain(self) -> List[Recommender]:
        """The ordered list of fallback recommenders for this strategy."""
        self.validate()
        if self.strategy is ColdStartStrategy.NONE:
            return []
        if self.strategy is ColdStartStrategy.POPULARITY:
            return [self.popularity_recommender]
        if self.strategy is ColdStartStrategy.CONTENT:
            return [self.content_recommender]
        return [self.content_recommender, self.popularity_recommender]

    def recommend(
        self,
        user_id: str,
        k: int,
        category: Optional[str] = None,
        exclude: Sequence[str] = (),
    ) -> List[Recommendation]:
        """Walk the fallback chain until ``k`` recommendations are gathered."""
        gathered: List[Recommendation] = []
        excluded = set(exclude)
        for recommender in self.chain():
            if len(gathered) >= k:
                break
            extra = recommender.recommend(
                user_id,
                k=k - len(gathered),
                category=category,
                exclude=excluded | {rec.item_id for rec in gathered},
            )
            gathered.extend(extra)
        return gathered[:k]
