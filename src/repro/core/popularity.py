"""Popularity recommenders: overall top sellers and the weekly hottest list.

§2.3 lists "the top overall sellers on a site" as the simplest recommendation
basis, and §5.2 (future work, item 2) asks for "weekly hottest merchandise".
Both are implemented here; the first doubles as the cold-start fallback and
the weakest baseline in the quality benchmark.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import RecommendationError
from repro.core.items import ItemCatalogView
from repro.core.ratings import RatingsStore
from repro.core.recommender import Recommendation, Recommender

__all__ = ["PopularityRecommender", "WeeklyHottestRecommender", "WEEK_MS"]

#: One simulated week in milliseconds.
WEEK_MS = 7 * 24 * 60 * 60 * 1000.0


class PopularityRecommender(Recommender):
    """Recommend the items with the most purchases overall (top sellers)."""

    name = "popularity"

    def __init__(self, ratings: RatingsStore, catalog: Optional[ItemCatalogView] = None) -> None:
        self.ratings = ratings
        self.catalog = catalog

    def _eligible(self, item_id: str, category: Optional[str]) -> bool:
        if category is None or self.catalog is None:
            return True
        return item_id in self.catalog and self.catalog.get(item_id).category == category

    def recommend(
        self,
        user_id: str,
        k: int = 10,
        category: Optional[str] = None,
        exclude: Iterable[str] = (),
    ) -> List[Recommendation]:
        excluded = set(exclude)
        counts = self.ratings.purchases()
        recommendations = [
            Recommendation(
                item_id=item_id,
                score=float(count),
                source=self.name,
                reason=f"bought {count} times overall",
            )
            for item_id, count in counts.items()
            if item_id not in excluded and self._eligible(item_id, category)
        ]
        recommendations.sort(key=lambda rec: (-rec.score, rec.item_id))
        return recommendations[:k]


class WeeklyHottestRecommender(Recommender):
    """Recommend the items bought most often during the most recent week.

    The window is anchored at ``now`` supplied by a clock callable, so the
    same recommender instance keeps giving fresh answers as simulated time
    moves on.
    """

    name = "weekly-hottest"

    def __init__(
        self,
        ratings: RatingsStore,
        now: "callable",
        catalog: Optional[ItemCatalogView] = None,
        window_ms: float = WEEK_MS,
    ) -> None:
        if window_ms <= 0:
            raise RecommendationError("window must be positive")
        self.ratings = ratings
        self.now = now
        self.catalog = catalog
        self.window_ms = window_ms

    def _eligible(self, item_id: str, category: Optional[str]) -> bool:
        if category is None or self.catalog is None:
            return True
        return item_id in self.catalog and self.catalog.get(item_id).category == category

    def recommend(
        self,
        user_id: str,
        k: int = 10,
        category: Optional[str] = None,
        exclude: Iterable[str] = (),
    ) -> List[Recommendation]:
        excluded = set(exclude)
        end = float(self.now())
        start = max(0.0, end - self.window_ms)
        counts = self.ratings.purchases_between(start, end)
        recommendations = [
            Recommendation(
                item_id=item_id,
                score=float(count),
                source=self.name,
                reason=f"bought {count} times this week",
            )
            for item_id, count in counts.items()
            if item_id not in excluded and self._eligible(item_id, category)
        ]
        recommendations.sort(key=lambda rec: (-rec.score, rec.item_id))
        return recommendations[:k]
