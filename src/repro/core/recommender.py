"""Recommender interface, recommendation records and the engine facade.

Every recommendation strategy in the library — the paper's agent/similarity
mechanism and the baselines it is compared with — implements the same small
:class:`Recommender` interface, so the benchmark harness and the buyer
recommendation agent (BRA) can swap engines freely.

The :class:`RecommendationEngine` is the facade the BRA actually calls: it
wraps a primary recommender, filters out merchandise the consumer already
bought, applies the cold-start fallback policy and annotates each result with
which engine produced it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.errors import RecommendationError
from repro.core.items import Item, ItemCatalogView
from repro.core.ratings import InteractionKind, RatingsStore

__all__ = ["Recommendation", "Recommender", "RecommendationEngine"]


@dataclass(frozen=True)
class Recommendation:
    """One recommended merchandise item."""

    item_id: str
    score: float
    source: str
    reason: str = ""

    def __post_init__(self) -> None:
        if not self.item_id:
            raise RecommendationError("recommendation must reference an item")


class Recommender(abc.ABC):
    """Interface implemented by every recommendation strategy."""

    #: Short machine-readable name used in benchmark tables and reasons.
    name: str = "recommender"

    @abc.abstractmethod
    def recommend(
        self,
        user_id: str,
        k: int = 10,
        category: Optional[str] = None,
        exclude: Iterable[str] = (),
    ) -> List[Recommendation]:
        """Produce up to ``k`` recommendations for ``user_id``.

        Args:
            user_id: the consumer asking for recommendations.
            category: optional merchandise category to focus on (the category
                of the consumer's current query in the Figure 4.2 workflow).
            exclude: item ids that must not be recommended (e.g. the items in
                the current query results, or items already bought).
        """

    def can_recommend(self, user_id: str) -> bool:
        """Whether the strategy has any signal at all for ``user_id``.

        Engines use this to decide when to fall back to the cold-start policy;
        the default assumes the recommender can always try.
        """
        return True

    def prepare_batch(self, user_ids: Sequence[str]) -> None:
        """Hook called once before a batch of ``recommend`` calls.

        The built-in strategies need no override: their derived state (the
        hybrid recommender's neighbor index, the collaborative recommender's
        user-vector cache) is stamp-cached lazily, so the first per-user call
        warms it for the whole batch.  The hook exists for strategies whose
        warm-up is *not* self-caching (e.g. one that fetches remote state per
        request).  Must not change what ``recommend`` returns — batching is a
        performance hint, not a semantic switch.  The default is a no-op.
        """


def _sorted_and_trimmed(
    recommendations: List[Recommendation], k: int
) -> List[Recommendation]:
    """Deterministic ordering: score descending, then item id."""
    ranked = sorted(recommendations, key=lambda rec: (-rec.score, rec.item_id))
    return ranked[:k]


class RecommendationEngine:
    """Facade used by the buyer recommendation agent.

    Combines a primary recommender with a cold-start fallback, removes
    merchandise the consumer has already purchased and guarantees the output
    is deterministic, deduplicated and at most ``k`` items long.
    """

    def __init__(
        self,
        primary: Recommender,
        ratings: Optional[RatingsStore] = None,
        fallback: Optional[Recommender] = None,
        exclude_purchased: bool = True,
    ) -> None:
        self.primary = primary
        self.fallback = fallback
        self.ratings = ratings
        self.exclude_purchased = exclude_purchased

    def recommend(
        self,
        user_id: str,
        k: int = 10,
        category: Optional[str] = None,
        exclude: Iterable[str] = (),
    ) -> List[Recommendation]:
        """Produce the final recommendation list for ``user_id``."""
        if k <= 0:
            raise RecommendationError("k must be positive")
        excluded: Set[str] = set(exclude)
        if self.exclude_purchased and self.ratings is not None:
            for interaction in self.ratings.interactions_of(user_id):
                if interaction.kind is InteractionKind.BUY:
                    excluded.add(interaction.item_id)

        recommendations: List[Recommendation] = []
        if self.primary.can_recommend(user_id):
            recommendations = self.primary.recommend(
                user_id, k=k, category=category, exclude=excluded
            )

        if len(recommendations) < k and self.fallback is not None:
            already = {rec.item_id for rec in recommendations} | excluded
            extra = self.fallback.recommend(
                user_id, k=k - len(recommendations), category=category, exclude=already
            )
            recommendations.extend(extra)

        deduplicated: Dict[str, Recommendation] = {}
        for rec in recommendations:
            if rec.item_id in excluded:
                continue
            if rec.item_id not in deduplicated or rec.score > deduplicated[rec.item_id].score:
                deduplicated[rec.item_id] = rec
        return _sorted_and_trimmed(list(deduplicated.values()), k)

    def recommend_many(
        self,
        user_ids: Iterable[str],
        k: int = 10,
        category: Optional[str] = None,
        exclude: Iterable[str] = (),
    ) -> Dict[str, List[Recommendation]]:
        """Recommendation lists for a batch of consumers at once.

        Output is guaranteed identical to calling :meth:`recommend` per user
        (including cold-start fallbacks): each user is served from the same
        code path as the single-user API.  Shared work is amortised by the
        strategies' stamp-cached derived state (warmed by the first user and
        reused for the rest) plus the ``prepare_batch`` hooks, which run
        exactly once per batch.  Duplicate user ids collapse to one entry.
        """
        if k <= 0:
            raise RecommendationError("k must be positive")
        ids = list(dict.fromkeys(user_ids))
        excluded = tuple(exclude)
        self.primary.prepare_batch(ids)
        if self.fallback is not None:
            self.fallback.prepare_batch(ids)
        return {
            user_id: self.recommend(user_id, k=k, category=category, exclude=excluded)
            for user_id in ids
        }
