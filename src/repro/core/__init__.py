"""Recommendation core: the paper's primary contribution.

The consumer recommendation mechanism of the paper is, algorithmically, three
pieces working together:

1. A **hierarchical consumer profile** (Figure 4.4) —
   ``Profile = <Category, Terms_of_Category, <Sub_Category, Terms_of_Sub_Category>>``
   with weighted terms — implemented in :mod:`repro.core.profile`.
2. A **profile learning rule** (Figure 4.5, top formula): a Rocchio-style
   update ``W_ci_new = W_ci + α · Σ_j (w_ji · quality_of_feedback_j)`` applied
   every time the consumer queries, buys, negotiates or bids — implemented in
   :mod:`repro.core.profile_learning`.
3. A **similarity algorithm** (Figure 4.5): find consumers whose profiles are
   most similar, discard candidates whose preference for the item category
   differs too much, and merge their preferred merchandise with the live query
   results — implemented in :mod:`repro.core.similarity` and
   :mod:`repro.core.hybrid`.

Alongside the paper's mechanism the package implements the baselines the
related-work section discusses (pure collaborative filtering, pure information
filtering, popularity), the future-work extensions (weekly hottest, tied-sale
cross-selling) and the evaluation metrics used by the benchmark harness.

**Scaling architecture.**  The similarity search is the mechanism's hot path,
so it exists in two score-identical forms: the brute-force reference scan
(:func:`repro.core.similarity.find_similar_users`) and the indexed path
(:mod:`repro.core.neighbors`), which precomputes per-profile norms and
flattened term vectors, prunes discard-rule failures with per-category sorted
preference windows before scoring, and is invalidated incrementally by
:class:`~repro.core.profile_learning.ProfileLearner` update hooks.  Batch
serving rides on top: :meth:`RecommendationEngine.recommend_many` serves every
consumer through the unchanged single-user path, so batch output always
equals per-user output; shared state (the neighbor index, the collaborative
filtering user-vector cache) is stamp-cached, warmed once by the first
consumer and reused across the batch.  :mod:`repro.core.sharding` partitions
the index itself: consumers are routed to one of N shards (consumer hash or
dominant category), each shard prunes with the Cauchy-Schwarz norm bound, and
per-shard top-k lists merge into the exact global ranking — the foundation of
the multi-server buyer agent fleet.
"""

from repro.core.items import Item, ItemCatalogView
from repro.core.ratings import Interaction, InteractionKind, RatingsStore
from repro.core.profile import Profile, Category, SubCategory, TermVector
from repro.core.profile_learning import FeedbackEvent, LearningConfig, ProfileLearner
from repro.core.similarity import (
    SimilarityConfig,
    profile_similarity,
    cosine_similarity,
    pearson_correlation,
    find_similar_users,
)
from repro.core.neighbors import ProfileNeighborIndex, find_similar_users_indexed
from repro.core.shard_map import ShardMap, ShardMigration, split_membership
from repro.core.sharding import (
    ShardRouter,
    ShardedNeighborIndex,
    find_similar_users_sharded,
    merge_topk,
)
from repro.core.recommender import Recommendation, Recommender, RecommendationEngine
from repro.core.collaborative import CollaborativeFilteringRecommender
from repro.core.information_filtering import InformationFilteringRecommender
from repro.core.popularity import PopularityRecommender, WeeklyHottestRecommender
from repro.core.cross_sell import CrossSellRecommender
from repro.core.hybrid import AgentHybridRecommender
from repro.core.cold_start import ColdStartPolicy
from repro.core import metrics

__all__ = [
    "Item",
    "ItemCatalogView",
    "Interaction",
    "InteractionKind",
    "RatingsStore",
    "Profile",
    "Category",
    "SubCategory",
    "TermVector",
    "FeedbackEvent",
    "LearningConfig",
    "ProfileLearner",
    "SimilarityConfig",
    "profile_similarity",
    "cosine_similarity",
    "pearson_correlation",
    "find_similar_users",
    "ProfileNeighborIndex",
    "find_similar_users_indexed",
    "ShardMap",
    "ShardMigration",
    "split_membership",
    "ShardRouter",
    "ShardedNeighborIndex",
    "find_similar_users_sharded",
    "merge_topk",
    "Recommendation",
    "Recommender",
    "RecommendationEngine",
    "CollaborativeFilteringRecommender",
    "InformationFilteringRecommender",
    "PopularityRecommender",
    "WeeklyHottestRecommender",
    "CrossSellRecommender",
    "AgentHybridRecommender",
    "ColdStartPolicy",
    "metrics",
]
