"""Consumer behaviour records and the observational ratings store.

The paper's mechanism uses *observational* ratings: "the system infers user
preferences from actions rather than requiring the user to explicitly rate an
item" (§2.3).  The BRA records every merchandise query, negotiation, auction
bid and purchase; the PA turns them into profile updates; the collaborative
filtering recommender additionally needs them as a user × item preference
matrix.  :class:`RatingsStore` is that matrix, fed by :class:`Interaction`
records with per-behaviour implicit weights.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import RecommendationError

__all__ = ["InteractionKind", "Interaction", "RatingsStore", "IMPLICIT_WEIGHTS"]


class InteractionKind(enum.Enum):
    """The consumer behaviours the BRA records (§3.3-2)."""

    QUERY = "query"
    VIEW = "view"
    NEGOTIATE = "negotiate"
    AUCTION_BID = "auction-bid"
    BUY = "buy"
    RATE = "rate"


#: Implicit preference weight of each behaviour.  A purchase is the strongest
#: signal, a query the weakest; explicit ratings carry their own value.
IMPLICIT_WEIGHTS: Dict[InteractionKind, float] = {
    InteractionKind.QUERY: 1.0,
    InteractionKind.VIEW: 1.5,
    InteractionKind.NEGOTIATE: 2.5,
    InteractionKind.AUCTION_BID: 3.0,
    InteractionKind.BUY: 5.0,
    InteractionKind.RATE: 0.0,  # replaced by the explicit value
}


@dataclass(frozen=True)
class Interaction:
    """One observed consumer behaviour."""

    user_id: str
    item_id: str
    kind: InteractionKind
    timestamp: float = 0.0
    value: float = 0.0
    category: str = ""
    marketplace: str = ""

    def implicit_value(self) -> float:
        """The preference weight this behaviour contributes."""
        if self.kind is InteractionKind.RATE:
            return self.value
        return IMPLICIT_WEIGHTS[self.kind]


class RatingsStore:
    """Accumulated user × item preference values built from interactions.

    The store keeps, per (user, item), the accumulated implicit value and the
    most recent timestamp, plus per-item aggregate statistics used by the
    popularity and cross-sell recommenders.
    """

    def __init__(self, max_value: float = 10.0) -> None:
        if max_value <= 0:
            raise RecommendationError("max_value must be positive")
        self.max_value = max_value
        self._values: Dict[str, Dict[str, float]] = {}
        self._timestamps: Dict[Tuple[str, str], float] = {}
        self._interactions: List[Interaction] = []
        self._item_users: Dict[str, Set[str]] = {}
        self._purchases: Dict[str, int] = {}
        self._purchase_log: List[Interaction] = []
        self._revision = 0

    # -- ingestion -----------------------------------------------------------

    def add(self, interaction: Interaction) -> float:
        """Record one interaction; return the user's new value for the item."""
        if not interaction.user_id or not interaction.item_id:
            raise RecommendationError("interaction must name both a user and an item")
        user_values = self._values.setdefault(interaction.user_id, {})
        current = user_values.get(interaction.item_id, 0.0)
        updated = min(self.max_value, current + interaction.implicit_value())
        user_values[interaction.item_id] = updated
        self._timestamps[(interaction.user_id, interaction.item_id)] = interaction.timestamp
        self._interactions.append(interaction)
        self._item_users.setdefault(interaction.item_id, set()).add(interaction.user_id)
        if interaction.kind is InteractionKind.BUY:
            self._purchases[interaction.item_id] = self._purchases.get(interaction.item_id, 0) + 1
            self._purchase_log.append(interaction)
        self._revision += 1
        return updated

    def remove_user(self, user_id: str) -> int:
        """Forget a user's interactions entirely; return how many were dropped.

        Used when a consumer is handed over to another buyer agent server:
        the source store must not keep scoring the departed consumer as a
        collaborative neighbour (or double-count them if they ever return).
        Unknown users are a no-op returning 0.
        """
        if user_id not in self._values and not any(
            interaction.user_id == user_id for interaction in self._interactions
        ):
            return 0
        self._values.pop(user_id, None)
        removed = [i for i in self._interactions if i.user_id == user_id]
        self._interactions = [i for i in self._interactions if i.user_id != user_id]
        self._purchase_log = [i for i in self._purchase_log if i.user_id != user_id]
        for interaction in removed:
            self._timestamps.pop((user_id, interaction.item_id), None)
            if interaction.kind is InteractionKind.BUY:
                remaining = self._purchases.get(interaction.item_id, 0) - 1
                if remaining > 0:
                    self._purchases[interaction.item_id] = remaining
                else:
                    self._purchases.pop(interaction.item_id, None)
        for item_id in list(self._item_users):
            self._item_users[item_id].discard(user_id)
            if not self._item_users[item_id]:
                del self._item_users[item_id]
        self._revision += 1
        return len(removed)

    def add_all(self, interactions: Iterable[Interaction]) -> int:
        count = 0
        for interaction in interactions:
            self.add(interaction)
            count += 1
        return count

    # -- lookups -------------------------------------------------------------

    @property
    def users(self) -> List[str]:
        return sorted(self._values)

    @property
    def items(self) -> List[str]:
        return sorted(self._item_users)

    @property
    def interaction_count(self) -> int:
        return len(self._interactions)

    @property
    def revision(self) -> int:
        """Monotonic change stamp: bumped by every add *and* removal.

        Cache owners must stamp with this rather than ``interaction_count`` —
        removing K interactions and adding K new ones leaves the count
        unchanged but not the content.
        """
        return self._revision

    def value(self, user_id: str, item_id: str) -> float:
        return self._values.get(user_id, {}).get(item_id, 0.0)

    def user_vector(self, user_id: str) -> Dict[str, float]:
        """The user's item→value vector (a copy)."""
        return dict(self._values.get(user_id, {}))

    def items_of(self, user_id: str) -> List[str]:
        return sorted(self._values.get(user_id, {}))

    def users_of(self, item_id: str) -> List[str]:
        return sorted(self._item_users.get(item_id, set()))

    def has_user(self, user_id: str) -> bool:
        return user_id in self._values

    def last_interaction_at(self, user_id: str, item_id: str) -> Optional[float]:
        return self._timestamps.get((user_id, item_id))

    def interactions_of(self, user_id: str) -> List[Interaction]:
        return [record for record in self._interactions if record.user_id == user_id]

    # -- aggregates ----------------------------------------------------------

    def purchase_count(self, item_id: str) -> int:
        return self._purchases.get(item_id, 0)

    def purchases(self) -> Dict[str, int]:
        return dict(self._purchases)

    def purchases_between(self, start: float, end: float) -> Dict[str, int]:
        """Purchase counts restricted to a simulated-time window."""
        window: Dict[str, int] = {}
        for record in self._purchase_log:
            if start <= record.timestamp <= end:
                window[record.item_id] = window.get(record.item_id, 0) + 1
        return window

    def co_purchases(self) -> Dict[Tuple[str, str], int]:
        """Counts of item pairs bought by the same user (for cross-selling)."""
        pairs: Dict[Tuple[str, str], int] = {}
        bought_by_user: Dict[str, Set[str]] = {}
        for record in self._purchase_log:
            bought_by_user.setdefault(record.user_id, set()).add(record.item_id)
        for bought in bought_by_user.values():
            ordered = sorted(bought)
            for index, first in enumerate(ordered):
                for second in ordered[index + 1:]:
                    pairs[(first, second)] = pairs.get((first, second), 0) + 1
        return pairs

    def density(self) -> float:
        """Fraction of the user × item matrix that is filled."""
        if not self._values or not self._item_users:
            return 0.0
        filled = sum(len(vector) for vector in self._values.values())
        return filled / float(len(self._values) * len(self._item_users))

    def sparsity(self) -> float:
        """1 - density; the "sparsity problem" knob from §2.3."""
        return 1.0 - self.density()
