"""Adversarial marketplace subsystem: handshakes, abuse, chaos, audit.

PRs 1-9 only ever exercised the platform against *failure* — crashed
hosts, cut links, overload.  This package opens the second correctness
axis, behaviour under *hostility*:

- :mod:`repro.adversarial.handshake` — the ``TradeHandshake`` protocol
  (init → nonce challenge → HMAC echo → finalize) securing every
  marketplace trade when ``PlatformConfig.handshake_trades`` is on,
  with typed rejections for forged nonces, replayed offers, stale
  credentials and double-finalize attempts;
- :mod:`repro.workload.adversary` — the ``AdversaryDriver`` scripting
  scalper fleets, replay/forgery bots and quota abuse against the
  admission layer (re-exported here for discoverability);
- :mod:`repro.adversarial.chaos` — the seeded, replayable
  ``ChaosSchedule`` generator compiling crash/partition/recover
  sequences into the existing :class:`~repro.platform.failure.FailurePlan`;
- :mod:`repro.adversarial.audit` — the ``InvariantAuditor`` sweeping the
  final platform state for global invariants: no double purchase, no
  lost paid transaction, balanced ledger, closed envelope taxonomy,
  every finalized trade backed by a verified handshake.

Nothing here imports :mod:`repro.ecommerce` at module level — the
e-commerce trade services import the handshake module, so this package
must sit *below* them in the import graph.
"""

from repro.adversarial.audit import AuditReport, InvariantAuditor
from repro.adversarial.chaos import ChaosEvent, ChaosSchedule
from repro.adversarial.handshake import (
    HandshakeBroker,
    HandshakeTranscript,
    TradeHandshake,
)

__all__ = [
    "AuditReport",
    "AdversaryDriver",
    "ChaosEvent",
    "ChaosSchedule",
    "HandshakeBroker",
    "HandshakeTranscript",
    "InvariantAuditor",
    "TradeHandshake",
]


def __getattr__(name: str):
    # AdversaryDriver lives beside the other workload drivers in
    # repro.workload.adversary (which imports e-commerce machinery); a
    # lazy re-export keeps this package importable from the trade
    # services without a cycle.
    if name == "AdversaryDriver":
        from repro.workload.adversary import AdversaryDriver

        return AdversaryDriver
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
