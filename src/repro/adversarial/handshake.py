"""The trade handshake protocol: init → nonce challenge → HMAC echo → finalize.

§4.1's authentication principles stop at the MBA's return trip; real
buyer/seller traffic (the Summoner ``HSBuyAgent`` suite this is modeled
on) secures each *trade* with a handshake: the marketplace issues a
fresh nonce, the buyer echoes it back under an HMAC keyed by its
credential's session key, and only a finalized handshake entitles its
holder to a trade.  The discipline is the one Snippet 2 enforces —
nonce echo, duplicate-nonce drop, a single finalize, and the nonce log
cleared once the handshake completes.

Each way the protocol can be abused raises its own typed error
(:class:`~repro.errors.HandshakeError` family), so the gateway's
envelope taxonomy can name the rejection:

- ``ForgedNonceError`` — the echo is not the issued nonce, or the HMAC
  does not prove possession of the session key;
- ``ReplayedOfferError`` — an already-consumed nonce answers a new
  challenge, or a finalized transcript is redeemed for a second trade;
- ``DoubleFinalizeError`` — a handshake is finalized twice;
- ``StaleCredentialError`` — the opening credential is expired or
  revoked.

The broker draws nonces and session keys from its
:class:`~repro.agents.security.AuthenticationService` — seeded by the
platform builder — so same-seed runs produce identical handshake
streams end to end.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.errors import (
    AuthenticationError,
    DoubleFinalizeError,
    ForgedNonceError,
    HandshakeError,
    ReplayedOfferError,
    StaleCredentialError,
)
from repro.agents.security import AgentCredential, AuthenticationService

__all__ = [
    "HandshakeBroker",
    "HandshakeTranscript",
    "TradeHandshake",
    "TAMPER_MODES",
]

#: Sabotage modes :meth:`HandshakeBroker.attempt` understands — one per
#: typed rejection, used by the attack drivers and the gateway's
#: ``handshake`` probe operation.
TAMPER_MODES = (
    "forged-nonce",
    "replayed-offer",
    "double-finalize",
    "stale-credential",
)


@dataclass(frozen=True)
class HandshakeTranscript:
    """The verifiable record a finalized handshake leaves behind.

    Frozen and content-complete: a marketplace stores one per finalized
    trade (``MarketplaceServer.trade_handshakes``), and the invariant
    auditor re-checks that every recorded transaction is backed by one.
    """

    handshake_id: str
    marketplace: str
    buyer: str
    nonce: str
    opened_at: float
    finalized_at: float
    verified: bool = True


class TradeHandshake:
    """One in-flight handshake session (init → echo → finalize)."""

    OPEN = "open"
    VERIFIED = "verified"
    FINALIZED = "finalized"

    def __init__(
        self,
        handshake_id: str,
        marketplace: str,
        buyer: str,
        credential: AgentCredential,
        nonce: str,
        opened_at: float,
    ) -> None:
        self.handshake_id = handshake_id
        self.marketplace = marketplace
        self.buyer = buyer
        self.credential = credential
        self.nonce = nonce
        self.opened_at = opened_at
        self.state = self.OPEN
        #: Nonces consumed within this session — the Snippet-2 nonce log,
        #: cleared when the handshake finalizes.
        self.nonce_log: List[str] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TradeHandshake(id={self.handshake_id!r}, buyer={self.buyer!r}, "
            f"state={self.state!r})"
        )


class HandshakeBroker:
    """Runs the handshake protocol for one marketplace.

    The broker owns all protocol state: open sessions, the set of
    consumed nonces (a nonce answers exactly one challenge, ever), the
    finalized transcripts and the set of transcripts already redeemed
    for a trade (a transcript entitles its holder to exactly one).
    """

    def __init__(self, marketplace: str, auth: AuthenticationService) -> None:
        self.marketplace = marketplace
        self.auth = auth
        self._seq = itertools.count(1)
        self._sessions: Dict[str, TradeHandshake] = {}
        self._outstanding_nonces: Set[str] = set()
        self._consumed_nonces: Set[str] = set()
        self._redeemed: Set[str] = set()
        self.completed: Dict[str, HandshakeTranscript] = {}
        self.opened_count = 0
        self.finalized_count = 0
        self.redeemed_count = 0
        self.rejections: Dict[str, int] = {}

    # -- bookkeeping --------------------------------------------------------

    def _reject(self, code: str) -> None:
        self.rejections[code] = self.rejections.get(code, 0) + 1

    def _session(self, handshake_id: str) -> TradeHandshake:
        session = self._sessions.get(handshake_id)
        if session is None:
            self._reject("handshake")
            raise HandshakeError(
                f"unknown handshake {handshake_id!r} on {self.marketplace!r}"
            )
        return session

    def _fresh_nonce(self) -> str:
        # Duplicate-nonce drop: a nonce that was ever issued is never
        # issued again — a colliding draw is discarded and redrawn.
        nonce = self.auth.challenge()
        while nonce in self._consumed_nonces or nonce in self._outstanding_nonces:
            nonce = self.auth.challenge()
        return nonce

    def stats(self) -> Dict[str, float]:
        return {
            "opened": float(self.opened_count),
            "finalized": float(self.finalized_count),
            "redeemed": float(self.redeemed_count),
            "rejected": float(sum(self.rejections.values())),
        }

    # -- the protocol -------------------------------------------------------

    def open(
        self,
        buyer: str,
        now: float,
        credential: Optional[AgentCredential] = None,
    ) -> TradeHandshake:
        """Init step: verify the buyer's credential, issue the nonce challenge.

        With no ``credential`` the broker issues a fresh one (the honest
        path: the marketplace vouches for a buyer its auth service just
        credentialed).  A presented credential that is expired, revoked
        or mis-signed is refused with :class:`StaleCredentialError`.
        """
        if credential is None:
            credential = self.auth.issue(
                f"hs-{self.marketplace}-{buyer}", owner=buyer, now=now
            )
        try:
            self.auth.verify(credential, now)
        except AuthenticationError as exc:
            self._reject("stale-credential")
            raise StaleCredentialError(
                f"handshake refused on {self.marketplace!r}: {exc}"
            ) from exc
        handshake_id = f"handshake-{self.marketplace}-{next(self._seq)}"
        nonce = self._fresh_nonce()
        session = TradeHandshake(
            handshake_id=handshake_id,
            marketplace=self.marketplace,
            buyer=buyer,
            credential=credential,
            nonce=nonce,
            opened_at=now,
        )
        self._sessions[handshake_id] = session
        self._outstanding_nonces.add(nonce)
        self.opened_count += 1
        return session

    def exchange(
        self, handshake_id: str, nonce: str, response: str, now: float
    ) -> TradeHandshake:
        """Echo step: the buyer answers the challenge with HMAC(session_key, nonce).

        The echo must present the exact nonce this session was issued
        (anything else is a forgery), the nonce must never have answered
        a challenge before (a consumed nonce is a replayed offer), and
        the HMAC must prove possession of the credential's session key.
        """
        session = self._session(handshake_id)
        if session.state != TradeHandshake.OPEN:
            self._reject("handshake")
            raise HandshakeError(
                f"handshake {handshake_id!r} is {session.state}; cannot exchange"
            )
        if nonce in self._consumed_nonces:
            self._reject("replayed-offer")
            raise ReplayedOfferError(
                f"nonce {nonce!r} already answered a challenge on "
                f"{self.marketplace!r}; offer replay refused"
            )
        if nonce != session.nonce:
            self._reject("forged-nonce")
            raise ForgedNonceError(
                f"handshake {handshake_id!r} was challenged with a different "
                f"nonce; forged echo refused"
            )
        try:
            self.auth.verify_response(session.credential, nonce, response, now)
        except AuthenticationError as exc:
            self._reject("forged-nonce")
            raise ForgedNonceError(
                f"handshake {handshake_id!r} echo does not prove the session "
                f"key: {exc}"
            ) from exc
        self._outstanding_nonces.discard(nonce)
        self._consumed_nonces.add(nonce)
        session.nonce_log.append(nonce)
        session.state = TradeHandshake.VERIFIED
        return session

    def finalize(self, handshake_id: str, now: float) -> HandshakeTranscript:
        """Finalize step: seal the handshake into a one-trade transcript.

        Single-finalize rule: a handshake finalizes exactly once; the
        nonce log is cleared on success (the Snippet-2 discipline).
        """
        session = self._session(handshake_id)
        if session.state == TradeHandshake.FINALIZED:
            self._reject("double-finalize")
            raise DoubleFinalizeError(
                f"handshake {handshake_id!r} is already finalized"
            )
        if session.state != TradeHandshake.VERIFIED:
            self._reject("handshake")
            raise HandshakeError(
                f"handshake {handshake_id!r} cannot finalize before its nonce "
                f"echo is verified"
            )
        session.state = TradeHandshake.FINALIZED
        session.nonce_log.clear()
        transcript = HandshakeTranscript(
            handshake_id=session.handshake_id,
            marketplace=self.marketplace,
            buyer=session.buyer,
            nonce=session.nonce,
            opened_at=session.opened_at,
            finalized_at=now,
        )
        self.completed[session.handshake_id] = transcript
        self.finalized_count += 1
        return transcript

    def perform(self, buyer: str, now: float) -> HandshakeTranscript:
        """The honest three-step flow, run to a finalized transcript."""
        session = self.open(buyer, now)
        response = AuthenticationService.respond(session.credential, session.nonce)
        self.exchange(session.handshake_id, session.nonce, response, now)
        return self.finalize(session.handshake_id, now)

    def redeem(self, transcript: HandshakeTranscript) -> HandshakeTranscript:
        """Spend a finalized transcript on one trade (exactly once)."""
        known = self.completed.get(transcript.handshake_id)
        if known is None or known != transcript:
            self._reject("handshake")
            raise HandshakeError(
                f"transcript {transcript.handshake_id!r} was never finalized "
                f"on {self.marketplace!r}"
            )
        if transcript.handshake_id in self._redeemed:
            self._reject("replayed-offer")
            raise ReplayedOfferError(
                f"transcript {transcript.handshake_id!r} was already redeemed "
                f"for a trade; offer replay refused"
            )
        self._redeemed.add(transcript.handshake_id)
        self.redeemed_count += 1
        return transcript

    # -- the attack surface -------------------------------------------------

    def attempt(
        self, buyer: str, now: float, tamper: Optional[str] = None
    ) -> HandshakeTranscript:
        """Run a handshake, optionally sabotaged in one specific way.

        ``tamper=None`` is the honest flow.  Each mode in
        :data:`TAMPER_MODES` exercises exactly one protocol violation
        and raises its typed error — this is what the replay/forgery
        bots and the gateway's ``handshake`` probe call.
        """
        if tamper is None:
            return self.perform(buyer, now)
        if tamper == "stale-credential":
            credential = self.auth.issue(
                f"hs-{self.marketplace}-{buyer}",
                owner=buyer,
                now=now - self.auth.credential_lifetime_ms - 1.0,
            )
            self.open(buyer, now, credential=credential)
            raise HandshakeError(  # pragma: no cover - open() must raise
                "stale credential was unexpectedly accepted"
            )
        if tamper == "forged-nonce":
            session = self.open(buyer, now)
            forged = "f" * 32 if session.nonce != "f" * 32 else "0" * 32
            response = AuthenticationService.respond(session.credential, forged)
            self.exchange(session.handshake_id, forged, response, now)
            raise HandshakeError(  # pragma: no cover - exchange() must raise
                "forged nonce was unexpectedly accepted"
            )
        if tamper == "replayed-offer":
            first = self.open(buyer, now)
            echo = AuthenticationService.respond(first.credential, first.nonce)
            self.exchange(first.handshake_id, first.nonce, echo, now)
            self.finalize(first.handshake_id, now)
            second = self.open(buyer, now)
            replay = AuthenticationService.respond(second.credential, first.nonce)
            self.exchange(second.handshake_id, first.nonce, replay, now)
            raise HandshakeError(  # pragma: no cover - exchange() must raise
                "replayed nonce was unexpectedly accepted"
            )
        if tamper == "double-finalize":
            session = self.open(buyer, now)
            echo = AuthenticationService.respond(session.credential, session.nonce)
            self.exchange(session.handshake_id, session.nonce, echo, now)
            self.finalize(session.handshake_id, now)
            self.finalize(session.handshake_id, now)
            raise HandshakeError(  # pragma: no cover - finalize() must raise
                "double finalize was unexpectedly accepted"
            )
        raise HandshakeError(
            f"unknown tamper mode {tamper!r}; expected one of {TAMPER_MODES}"
        )
