"""End-of-run global invariant audit over the whole platform state.

A chaos run proves nothing by finishing; it proves something when an
independent sweep of the final state finds the books balanced.  The
:class:`InvariantAuditor` walks every marketplace ledger, every buyer
server's primary UserDB and every hosted replica, and asserts the
invariants an honest marketplace must keep *no matter what* was crashed,
partitioned, replayed or forged along the way:

- **no double purchase** — every transaction id is minted once and
  recorded on exactly one primary;
- **no lost paid transaction** — every transaction a marketplace
  recorded (money changed hands) is present on the buyer's side;
- **balanced ledger** — buyer-side and marketplace-side prices agree,
  transaction by transaction and in total, and every converged replica
  carries the same transactions as its primary;
- **closed envelope taxonomy** — every observed envelope status and
  error code is in the published taxonomy;
- **handshake-backed trades** — with ``handshake_trades`` on, every
  recorded transaction is backed by a verified, finalized handshake
  transcript.

The auditor only reads; it never mutates platform state.  Violations
are collected (deterministically ordered) rather than raised, so a
report can be embedded byte-reproducibly in a benchmark artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.api.envelope import ApiStatus, KNOWN_ERROR_CODES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ecommerce.platform_builder import ECommercePlatform

__all__ = ["AuditReport", "InvariantAuditor"]


@dataclass
class AuditReport:
    """Outcome of one invariant sweep: what was checked, what failed."""

    violations: List[str] = field(default_factory=list)
    checks: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def _count(self, invariant: str, amount: int = 1) -> None:
        self.checks[invariant] = self.checks.get(invariant, 0) + amount

    def as_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "violations": list(self.violations),
            "checks": {key: self.checks[key] for key in sorted(self.checks)},
        }


class InvariantAuditor:
    """Sweeps a quiesced platform for the global marketplace invariants."""

    def __init__(self, platform: "ECommercePlatform") -> None:
        self.platform = platform

    # -- helpers ------------------------------------------------------------

    def _primary_servers(self):
        """Every non-retired buyer server, in fleet order."""
        fleet = self.platform.fleet
        if fleet is None:
            return [self.platform.buyer_server]
        return [server for server in fleet.servers if server.name not in fleet.retired]

    # -- the sweep ----------------------------------------------------------

    def audit(
        self,
        statuses: Optional[Dict[str, int]] = None,
        error_codes: Optional[Dict[str, int]] = None,
        require_converged: bool = True,
    ) -> AuditReport:
        """Run every invariant; return the collected report.

        ``statuses`` / ``error_codes`` are the envelope histograms a
        scenario observed (status name → count, error code → count);
        pass them to close the taxonomy invariant over actual traffic.
        ``require_converged`` additionally demands every hosted replica
        carry *exactly* its primary's transactions — set it when the
        run quiesced (faults repaired, anti-entropy settled) before the
        audit, which is how ``chaos_marketplace_day`` calls it.
        """
        report = AuditReport()
        self._audit_marketplace_ledgers(report)
        self._audit_buyer_side(report)
        self._audit_replicas(report, require_converged)
        self._audit_taxonomy(report, statuses, error_codes)
        self._audit_handshakes(report)
        return report

    def _audit_marketplace_ledgers(self, report: AuditReport) -> None:
        """Transaction ids minted once; catalog sold counts match the ledger."""
        seen: Dict[str, str] = {}
        for marketplace in self.platform.marketplaces:
            sold_by_item: Dict[str, int] = {}
            for txn in marketplace.transactions:
                report._count("unique-transaction-ids")
                if txn.transaction_id in seen:
                    report.violations.append(
                        f"double purchase: transaction {txn.transaction_id} "
                        f"recorded on {seen[txn.transaction_id]} and "
                        f"{marketplace.name}"
                    )
                seen[txn.transaction_id] = marketplace.name
                sold_by_item[txn.item_id] = sold_by_item.get(txn.item_id, 0) + 1
            for listing in marketplace.catalog.listings():
                report._count("catalog-sold-matches-ledger")
                recorded = sold_by_item.get(listing.item.item_id, 0)
                if listing.sold != recorded:
                    report.violations.append(
                        f"catalog drift on {marketplace.name}: item "
                        f"{listing.item.item_id} shows sold={listing.sold} but "
                        f"the ledger records {recorded} transactions"
                    )
                if listing.stock < 0:
                    report.violations.append(
                        f"negative stock on {marketplace.name}: item "
                        f"{listing.item.item_id} has stock={listing.stock}"
                    )

    def _audit_buyer_side(self, report: AuditReport) -> None:
        """Every marketplace transaction is on the buyer's side, exactly once."""
        holders: Dict[str, List[str]] = {}
        prices: Dict[str, float] = {}
        for server in self._primary_servers():
            for txn in server.user_db.all_transactions():
                holders.setdefault(txn.transaction_id, []).append(server.name)
                prices[txn.transaction_id] = txn.price
        marketplace_total = 0.0
        buyer_total = 0.0
        for marketplace in self.platform.marketplaces:
            for txn in marketplace.transactions:
                report._count("no-lost-paid-transaction")
                marketplace_total += txn.price
                recorded_on = holders.get(txn.transaction_id, [])
                if not recorded_on:
                    report.violations.append(
                        f"lost paid transaction: {txn.transaction_id} "
                        f"({txn.user_id} on {marketplace.name}) is on no "
                        f"buyer server"
                    )
                    continue
                if len(recorded_on) > 1:
                    report.violations.append(
                        f"double purchase: {txn.transaction_id} is recorded "
                        f"on {sorted(recorded_on)}"
                    )
                buyer_price = prices[txn.transaction_id]
                buyer_total += buyer_price
                if abs(buyer_price - txn.price) > 1e-9:
                    report.violations.append(
                        f"unbalanced ledger: {txn.transaction_id} is "
                        f"{txn.price:.2f} at {marketplace.name} but "
                        f"{buyer_price:.2f} buyer-side"
                    )
        if abs(marketplace_total - buyer_total) > 1e-6:
            report.violations.append(
                f"unbalanced ledger: marketplaces sum to "
                f"{marketplace_total:.2f} but buyer servers sum to "
                f"{buyer_total:.2f}"
            )
        report._count("ledger-balance-totals")

    def _audit_replicas(self, report: AuditReport, require_converged: bool) -> None:
        """Hosted replicas never invent transactions; converged ones match."""
        for server in self._primary_servers():
            manager = server.replication
            if manager is None:
                continue
            primary_ids = {
                txn.transaction_id for txn in server.user_db.all_transactions()
            }
            for peer in manager.peers:
                if peer.replication is None:
                    continue
                replica = peer.replication.hosted.get(server.name)
                if replica is None:
                    continue
                report._count("replica-ledgers")
                replica_ids = {
                    txn.transaction_id for txn in replica.db.all_transactions()
                }
                invented = sorted(replica_ids - primary_ids)
                if invented:
                    report.violations.append(
                        f"replica of {server.name} on {peer.name} carries "
                        f"transactions its primary does not: {invented}"
                    )
                if require_converged:
                    missing = sorted(primary_ids - replica_ids)
                    if missing:
                        report.violations.append(
                            f"replica of {server.name} on {peer.name} is "
                            f"missing transactions after quiesce: {missing}"
                        )

    def _audit_taxonomy(
        self,
        report: AuditReport,
        statuses: Optional[Dict[str, int]],
        error_codes: Optional[Dict[str, int]],
    ) -> None:
        """Observed envelope statuses and error codes stay in the taxonomy."""
        for status in sorted(statuses or {}):
            report._count("envelope-statuses")
            if status not in ApiStatus.ALL:
                report.violations.append(
                    f"envelope status {status!r} is outside the taxonomy"
                )
        for code in sorted(error_codes or {}):
            report._count("envelope-error-codes")
            if code not in KNOWN_ERROR_CODES:
                report.violations.append(
                    f"envelope error code {code!r} is outside the taxonomy"
                )

    def _audit_handshakes(self, report: AuditReport) -> None:
        """With handshake_trades on, every trade is transcript-backed."""
        for marketplace in self.platform.marketplaces:
            broker = marketplace.handshakes
            if broker is None:
                continue
            for txn in marketplace.transactions:
                report._count("handshake-backed-trades")
                transcript = marketplace.trade_handshakes.get(txn.transaction_id)
                if transcript is None:
                    report.violations.append(
                        f"unbacked trade: {txn.transaction_id} on "
                        f"{marketplace.name} has no handshake transcript"
                    )
                    continue
                if not transcript.verified:
                    report.violations.append(
                        f"unverified handshake behind {txn.transaction_id} "
                        f"on {marketplace.name}"
                    )
                if transcript.handshake_id not in broker.completed:
                    report.violations.append(
                        f"orphan transcript behind {txn.transaction_id}: "
                        f"{transcript.handshake_id} was never finalized on "
                        f"{marketplace.name}"
                    )
            if broker.redeemed_count < len(marketplace.trade_handshakes):
                report.violations.append(
                    f"{marketplace.name} recorded more handshake-backed "
                    f"trades than redeemed transcripts"
                )
