"""Seeded, replayable chaos schedules over the simulated platform.

A :class:`ChaosSchedule` is a deterministic sequence of outage windows —
host crashes and single-host partitions, each paired with its repair —
drawn from a seeded RNG over a bounded horizon.  :meth:`compile` lowers
the schedule onto the existing failure machinery
(:class:`~repro.platform.failure.FailurePlan` /
:class:`~repro.platform.failure.FailureInjector`): a ``crash`` becomes a
``crash-host`` action, a ``partition`` becomes symmetric ``cut-link``
actions against every peer, and the paired repairs mirror them.  Same
seed → same events → same plan, which is what makes a chaos run (and
its benchmark artifact) byte-reproducible.

Windows are serialized by construction — at most one host is degraded
at any time, and every window is followed by a settle gap at least as
long as the replication anti-entropy interval.  That is a correctness
choice, not a simplification: it guarantees every paid transaction was
replicated before the *next* fault can touch its primary, so the
end-of-run invariant audit ("no lost paid transaction") is a meaningful
assertion about the failover machinery rather than about luck.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import WorkloadError
from repro.platform.failure import FailurePlan

__all__ = ["ChaosEvent", "ChaosSchedule"]

#: Event kinds a schedule can contain; faults and their paired repairs.
FAULT_KINDS = ("crash", "partition")
REPAIR_OF = {"crash": "recover", "partition": "heal"}


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault or repair against a single host."""

    at_ms: float
    kind: str  # "crash" | "recover" | "partition" | "heal"
    host: str

    def as_dict(self) -> Dict[str, object]:
        return {"at_ms": round(self.at_ms, 3), "kind": self.kind, "host": self.host}


class ChaosSchedule:
    """An ordered, seeded sequence of outage windows over chosen victim hosts."""

    def __init__(self, events: Sequence[ChaosEvent], seed: int) -> None:
        self.events: Tuple[ChaosEvent, ...] = tuple(
            sorted(events, key=lambda event: (event.at_ms, event.host, event.kind))
        )
        self.seed = seed

    @classmethod
    def generate(
        cls,
        hosts: Sequence[str],
        start_ms: float,
        horizon_ms: float,
        seed: int = 0,
        max_outages: int = 3,
        mean_gap_ms: float = 2_000.0,
        mean_outage_ms: float = 1_500.0,
        settle_ms: float = 1_000.0,
    ) -> "ChaosSchedule":
        """Draw up to ``max_outages`` serialized outage windows.

        Each window picks a victim host and a fault kind, starts after a
        jittered gap and lasts a jittered duration; the repair fires at
        the window's end and the next window cannot begin until
        ``settle_ms`` later.  Windows that would overrun the horizon are
        dropped (never truncated), so every fault in the schedule has
        its repair inside ``[start_ms, start_ms + horizon_ms]``.
        """
        if not hosts:
            raise WorkloadError("a chaos schedule needs at least one victim host")
        if horizon_ms <= 0:
            raise WorkloadError("chaos horizon must be positive")
        if max_outages < 0:
            raise WorkloadError("max_outages cannot be negative")
        if mean_gap_ms <= 0 or mean_outage_ms <= 0:
            raise WorkloadError("chaos gap and outage means must be positive")
        if settle_ms < 0:
            raise WorkloadError("settle_ms cannot be negative")
        rng = random.Random(f"chaos|{seed}")
        ordered_hosts = sorted(hosts)
        events: List[ChaosEvent] = []
        cursor = start_ms
        deadline = start_ms + horizon_ms
        for _ in range(max_outages):
            begin = cursor + rng.uniform(0.5, 1.5) * mean_gap_ms
            end = begin + rng.uniform(0.5, 1.5) * mean_outage_ms
            if end + settle_ms > deadline:
                break
            victim = rng.choice(ordered_hosts)
            fault = rng.choice(FAULT_KINDS)
            events.append(ChaosEvent(begin, fault, victim))
            events.append(ChaosEvent(end, REPAIR_OF[fault], victim))
            cursor = end + settle_ms
        return cls(events, seed=seed)

    # -- inspection ---------------------------------------------------------

    @property
    def outages(self) -> int:
        """Number of fault windows (half the events, by construction)."""
        return sum(1 for event in self.events if event.kind in FAULT_KINDS)

    def victims(self) -> List[str]:
        """Hosts hit by at least one fault, sorted."""
        return sorted({e.host for e in self.events if e.kind in FAULT_KINDS})

    def as_dicts(self) -> List[Dict[str, object]]:
        """The full event list in report/JSON form (deterministic order)."""
        return [event.as_dict() for event in self.events]

    # -- lowering -----------------------------------------------------------

    def compile(self, peers: Sequence[str]) -> FailurePlan:
        """Lower the schedule onto a :class:`FailurePlan`.

        ``peers`` is the universe of hosts a partitioned victim is cut
        off from (typically every other host on the platform); the
        victim itself is skipped.  Link cuts are symmetric —
        ``SimulatedNetwork.cut_link`` severs both directions — so one
        action per peer fully isolates the victim.
        """
        plan = FailurePlan()
        for event in self.events:
            if event.kind == "crash":
                plan.crash_host(event.at_ms, event.host)
            elif event.kind == "recover":
                plan.recover_host(event.at_ms, event.host)
            elif event.kind == "partition":
                for other in peers:
                    if other != event.host:
                        plan.cut_link(event.at_ms, event.host, other)
            elif event.kind == "heal":
                for other in peers:
                    if other != event.host:
                        plan.restore_link(event.at_ms, event.host, other)
            else:
                raise WorkloadError(f"unknown chaos event kind {event.kind!r}")
        return plan
