"""Exception hierarchy shared across the repro packages.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class at the public API boundary.  The hierarchy
mirrors the subsystems: platform errors (simulation substrate), agent errors
(Aglet runtime), e-commerce errors (servers and trading protocols) and
recommendation errors (profiles, similarity, engines).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


# ---------------------------------------------------------------------------
# Platform / simulation substrate
# ---------------------------------------------------------------------------


class PlatformError(ReproError):
    """Base class for errors in the simulated platform layer."""


class ClockError(PlatformError):
    """Raised when the simulation clock is driven backwards or misused."""


class NetworkError(PlatformError):
    """Raised when a network transfer cannot be completed."""


class HostUnreachableError(NetworkError):
    """Raised when the destination host is unknown, down or partitioned."""


class LinkDownError(NetworkError):
    """Raised when the link between two hosts has been administratively cut."""


class TransferDroppedError(NetworkError):
    """Raised when a transfer is dropped by the loss model."""


class HostError(PlatformError):
    """Raised for invalid host operations (double start, crash while down...)."""


# ---------------------------------------------------------------------------
# Agent runtime
# ---------------------------------------------------------------------------


class AgentError(ReproError):
    """Base class for errors in the Aglet-style agent runtime."""


class AgentLifecycleError(AgentError):
    """Raised when an operation is illegal for the agent's current state."""


class AgentNotFoundError(AgentError):
    """Raised when an agent id cannot be resolved in a context or directory."""


class DispatchError(AgentError):
    """Raised when an agent cannot be dispatched to the requested host."""


class RetractionError(AgentError):
    """Raised when a remote agent cannot be retracted to its origin."""


class MessageDeliveryError(AgentError):
    """Raised when a message cannot be delivered to its destination agent."""


class MessageTimeoutError(MessageDeliveryError):
    """Raised when a request does not receive a reply within its deadline."""


class SerializationError(AgentError):
    """Raised when agent state cannot be captured or restored for migration."""


class AuthenticationError(AgentError):
    """Raised when a returning mobile agent fails authentication (§4.1-2)."""


# ---------------------------------------------------------------------------
# E-commerce platform
# ---------------------------------------------------------------------------


class ECommerceError(ReproError):
    """Base class for errors raised by the e-commerce platform layer."""


class RegistrationError(ECommerceError):
    """Raised when a server cannot register with the coordinator (Fig. 4.1)."""


class UnknownUserError(ECommerceError):
    """Raised when an operation references a consumer that never registered."""


class LoginError(ECommerceError):
    """Raised for login/logout protocol violations (duplicate login, bad password)."""


class CatalogError(ECommerceError):
    """Raised for invalid catalogue operations (unknown item, bad price)."""


class MarketplaceError(ECommerceError):
    """Raised when a marketplace cannot satisfy a trading request."""


class AuctionError(MarketplaceError):
    """Raised for invalid auction operations (bid below reserve, closed auction)."""


class NegotiationError(MarketplaceError):
    """Raised when a negotiation protocol step is invalid."""


class HandshakeError(MarketplaceError):
    """Raised when a trade handshake violates the protocol (§4.1 hardening).

    Base class for the typed rejections of the handshake-secured trade
    path: every negotiated/auctioned purchase on a marketplace built with
    ``handshake_trades`` must present a verifiable handshake transcript
    (init → nonce challenge → HMAC echo → finalize), and each way the
    protocol can be abused gets its own subclass so the gateway's
    envelope taxonomy can name it.
    """


class ForgedNonceError(HandshakeError):
    """Raised when a handshake echo does not answer the issued nonce.

    Covers both a fabricated nonce (the attacker invented one instead of
    echoing the challenge) and a bad HMAC response (the attacker does not
    hold the credential's session key).
    """


class ReplayedOfferError(HandshakeError):
    """Raised when an already-consumed nonce or transcript is presented again.

    A nonce answers exactly one challenge and a finalized transcript
    entitles its holder to exactly one trade; replaying either is how a
    captured offer would be resubmitted.
    """


class DoubleFinalizeError(HandshakeError):
    """Raised when a handshake is finalized a second time (single-finalize rule)."""


class StaleCredentialError(HandshakeError):
    """Raised when a handshake is opened with an expired or revoked credential."""


class TransactionError(ECommerceError):
    """Raised when a purchase cannot be completed (no stock, no funds)."""


class SessionError(ECommerceError):
    """Raised when a consumer session is used after logout or before login."""


class ReplicationError(ECommerceError):
    """Raised when the cross-server replication protocol is misused."""


class FleetUnavailableError(ECommerceError):
    """Raised when no live buyer agent server can take a request.

    Distinguishes "the whole fleet is down" from ordinary e-commerce
    failures: routing a consumer (or draining a failed shard) when every
    shard's owning server is crashed raises this instead of silently
    handing the request to a dead host.
    """


class ShardMapError(ReproError):
    """Raised when the versioned shard map is misused.

    Unknown shard ids, conflicting migrations, commits without a matching
    begin — topology bookkeeping errors, as opposed to a topology that is
    merely degraded (crashed owners raise e-commerce errors instead).
    """


# ---------------------------------------------------------------------------
# Recommendation core
# ---------------------------------------------------------------------------


class RecommendationError(ReproError):
    """Base class for errors in the recommendation core."""


class ProfileError(RecommendationError):
    """Raised for structurally invalid profiles or profile updates."""


class SimilarityError(RecommendationError):
    """Raised when similarity cannot be computed (empty profiles, bad config)."""


class ColdStartError(RecommendationError):
    """Raised when a recommender has no data at all for the requested user."""


class FuturePendingError(ReproError):
    """Raised when an :class:`~repro.api.concurrency.ApiFuture` result is
    read before the session scheduler has resolved it."""


class ApiCallFailedError(ReproError):
    """Raised by :meth:`~repro.api.concurrency.ApiFuture.result` when the
    envelope resolved failed/unavailable/rejected — the futures convention
    (a failed future *raises*; it never silently returns ``None``).

    Carries the envelope's structured :class:`~repro.api.envelope.ApiError`
    as ``.error`` so callers that want the taxonomy can branch on
    ``exc.error.code`` / ``exc.error.kind`` without re-reading the future.
    Callers that prefer envelope inspection over exceptions should read
    ``future.response`` instead.
    """

    def __init__(self, message: str, error: object = None) -> None:
        super().__init__(message)
        self.error = error


class WorkloadError(ReproError):
    """Raised by the synthetic workload generators for invalid parameters."""


class ExperimentError(ReproError):
    """Raised by the experiment harness for mis-configured experiments."""
