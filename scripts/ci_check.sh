#!/usr/bin/env bash
# Tier-1 CI gate: full test suite + the neighbor-index benchmark smoke runs.
#
# Usage: scripts/ci_check.sh
#
# The benchmarks run in smoke mode (small populations, <10s total) but still
# assert brute-force equivalence for the indexed AND sharded paths plus a
# minimum sharded-vs-brute speedup; export REPRO_BENCH_FULL=1 to run the
# 5000-consumer scaling + shard-sweep check instead (where at least one
# sharded configuration must also beat the single-index path).
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: unit + property + integration tests =="
python -m pytest -x -q tests --ignore=tests/property/test_sharding.py

echo "== tier-1: sharding equivalence property suite =="
python -m pytest -x -q tests/property/test_sharding.py

echo "== tier-1: benchmark smoke (neighbor index scaling + shard sweep) =="
python -m pytest -x -q benchmarks/bench_neighbors_scaling.py

echo "ci_check: OK"
