#!/usr/bin/env bash
# Tier-1 CI gate: full test suite + the neighbor-index benchmark smoke run.
#
# Usage: scripts/ci_check.sh
#
# The benchmark runs in smoke mode (small populations, <10s) but still
# asserts brute-force/indexed equivalence and a minimum speedup; export
# REPRO_BENCH_FULL=1 to run the 5000-consumer scaling check instead.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: unit + property + integration tests =="
python -m pytest -x -q tests

echo "== tier-1: benchmark smoke (neighbor index scaling) =="
python -m pytest -x -q benchmarks/bench_neighbors_scaling.py

echo "ci_check: OK"
