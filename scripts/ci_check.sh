#!/usr/bin/env bash
# Tier-1 CI gate: full test suite + the neighbor-index benchmark smoke runs.
#
# Usage: scripts/ci_check.sh
#
# The benchmarks run in smoke mode (small populations, <10s total) but still
# assert brute-force equivalence for the indexed AND sharded paths plus a
# minimum sharded-vs-brute speedup; export REPRO_BENCH_FULL=1 to run the
# 5000-consumer scaling + shard-sweep check instead (where at least one
# sharded configuration must also beat the single-index path).
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: unit + property + integration tests =="
python -m pytest -x -q tests --ignore=tests/property/test_sharding.py

echo "== tier-1: sharding equivalence property suite =="
python -m pytest -x -q tests/property/test_sharding.py

echo "== tier-1 (stdlib kernels): full suite again under REPRO_NO_NUMPY=1 =="
echo "==   every scoring path must be green without numpy importable     =="
REPRO_NO_NUMPY=1 python -m pytest -x -q tests --ignore=tests/property/test_sharding.py
REPRO_NO_NUMPY=1 python -m pytest -x -q tests/property/test_sharding.py

echo "== tier-1: benchmark smoke (neighbor index scaling + shard sweep =="
echo "==         + scoring-kernel trajectory artifact reproduction)    =="
python -m pytest -x -q benchmarks/bench_neighbors_scaling.py

echo "== tier-1: scoring-kernel artifact smoke (deterministic block must =="
echo "==         regenerate byte-for-byte; recorded full-mode trajectory =="
echo "==         must hold the PR-8 acceptance bars)                     =="
python - <<'PY'
import json
from pathlib import Path

payload = json.loads(Path("benchmarks/BENCH_neighbors_scaling.json").read_text())
measured = payload["measured"]
assert measured["mode"] == "full" and measured["numpy"] is True, measured
sizes = [row["consumers"] for row in measured["rows"]]
assert 50000 in sizes and sizes == sorted(sizes), sizes
assert all(row["backends_identical"] for row in measured["rows"])
at_5k = next(r for r in measured["rows"] if r["consumers"] == 5000)
assert at_5k["kernel_speedup"] >= measured["required_speedup_at_5000"], at_5k
at_50k = next(r for r in measured["rows"] if r["consumers"] == 50000)
assert at_50k["brute_ms"] is None and at_50k["numpy_ms"] is not None, at_50k
print("kernel artifact smoke: OK —",
      f"5k speedup {at_5k['kernel_speedup']}x "
      f"(bar {measured['required_speedup_at_5000']}x),",
      f"50k numpy {at_50k['numpy_ms']}ms vs dict {at_50k['dict_ms']}ms")
PY

echo "== tier-1: benchmark smoke (concurrent load + artifact reproduction) =="
python -m pytest -x -q benchmarks/bench_concurrent_load.py

echo "== tier-1: benchmark smoke (saturation sweep + artifact reproduction) =="
python -m pytest -x -q benchmarks/bench_saturation_sweep.py

echo "== tier-1: benchmark smoke (elastic fleet + artifact reproduction) =="
python -m pytest -x -q benchmarks/bench_elastic_fleet.py

echo "== tier-1: benchmark smoke (adversarial chaos day + artifact reproduction) =="
python -m pytest -x -q benchmarks/bench_adversarial.py

echo "== tier-1: example smoke runs (deprecation-clean: examples must not =="
echo "==         touch the shimmed legacy session/fleet methods)         =="
for example in examples/*.py; do
  echo "-- ${example}"
  python -W error::DeprecationWarning "${example}" >/dev/null
done

echo "== tier-1: gateway smoke (one request per operation type) =="
python - <<'PY'
from repro import build_platform
from repro.api import ApiStatus

platform = build_platform(seed=5, num_buyer_servers=3, replication_factor=1,
                          api_admission_capacity=64)
gateway = platform.gateway()
keyword = next(iter(platform.catalog_view())).terms[0][0]

ok = [
    gateway.register("smoke-reg"),
    gateway.login("smoke"),
    gateway.query("smoke", keyword),
]
hit = ok[-1].result.hits[0]
ok += [
    gateway.buy("smoke", hit.item, marketplace=hit.marketplace),
    gateway.join_auction("smoke", hit.item, max_price=hit.price * 1.5,
                         marketplace=hit.marketplace),
    gateway.negotiate("smoke", hit.item, max_price=hit.price,
                      marketplace=hit.marketplace),
    gateway.rate("smoke", hit.item, 4.0),
    gateway.recommendations("smoke", k=5),
    gateway.weekly_hottest("smoke", k=5),
    gateway.cross_sell("smoke", k=3),
    gateway.find_similar("smoke"),
    gateway.admin_stats(),
    gateway.logout("smoke"),
]
for resp in ok:
    assert resp.ok, (resp.operation, resp.status, resp.error)
    assert resp.status == ApiStatus.OK, (resp.operation, resp.status)
    assert resp.error is None and resp.result is not None

# The failure side of the taxonomy: failed / unavailable / rejected.
failed = gateway.query("never-logged-in", keyword)
assert failed.status == ApiStatus.FAILED and failed.error.code == "unknown-user"
over_budget = gateway.find_similar("smoke-reg", deadline_ms=1e-6)
assert over_budget.status == ApiStatus.UNAVAILABLE, over_budget.status
assert over_budget.error.code == "deadline-exceeded"
for server in platform.buyer_servers:
    platform.failures.crash_host(server.name)
down = gateway.login("smoke-2")
assert down.status == ApiStatus.UNAVAILABLE, (down.status, down.error)
statuses = {s for s in (r.status for r in ok)} | {failed.status, down.status}
assert statuses <= set(ApiStatus.ALL)
print("gateway smoke: OK —", len(ok), "operations ok,",
      f"taxonomy covered: {sorted(statuses)}")
PY

echo "== tier-1: concurrent-scenario smoke (overlap must shed, queue, =="
echo "==         and report taxonomy-clean statuses)                  =="
python - <<'PY'
from repro import build_platform
from repro.api import ApiStatus
from repro.workload.consumers import ConsumerPopulation
from repro.workload.scenarios import ScenarioRunner

platform = build_platform(seed=11, num_buyer_servers=4, replication_factor=1,
                          api_admission_capacity=40,
                          api_admission_refill_per_ms=0.2)
runner = ScenarioRunner(platform, ConsumerPopulation(400, groups=4, seed=11),
                        seed=11)
report = runner.concurrent_day(sessions=300, queries_per_session=2,
                               arrival_rate_per_ms=0.15, think_time_ms=150.0,
                               seed=11)
d = report.as_dict()
# A shed request completed nothing: requests == completed + shed, always.
assert d["sessions"] == 300 and d["completed"] == d["requests"] - d["shed"], d
# Overlap was real: admission shed some of it and queues formed.
assert d["shed"] > 0 and 0.0 < report.shed_rate < 1.0, d
assert d["queue_wait_ms"]["count"] > 0 and d["queue_wait_ms"]["max"] > 0.0, d
# Latency stats populated, over dispatched requests only.
assert d["latency_ms"]["count"] == d["completed"] > 0, d
# Cumulative histogram: monotone counts, +Inf bucket holds the total.
counts = [b["count"] for b in d["histogram"]]
assert counts == sorted(counts) and counts[-1] == d["latency_ms"]["count"], d
# Taxonomy-clean: every reported status is in the closed ApiStatus set.
assert set(d["statuses"]) <= set(ApiStatus.ALL), d["statuses"]
assert d["statuses"].get(ApiStatus.REJECTED, 0) == d["shed"], d["statuses"]
# The sequential scenarios' path never engaged the session layer's queues
# before this run, and the metrics middleware kept shed requests out of the
# latency timers.
lat = platform.metrics.timer("api.latency_ms").summary()
assert lat["count"] == d["latency_ms"]["count"], lat
print("concurrent_day smoke: OK —", d["requests"], "requests,",
      f"shed {report.shed_rate:.1%}, queue p95 {d['queue_wait_ms']['p95']:.0f}ms,",
      f"latency p95 {d['latency_ms']['p95']:.0f}ms")
PY

echo "== tier-1: saturation-sweep smoke (goodput knee, closed taxonomy, =="
echo "==         shed/rejected agreement across every sweep point)      =="
python - <<'PY'
import json
from pathlib import Path

from repro.api import ApiStatus

payload = json.loads(Path("benchmarks/BENCH_saturation_sweep.json").read_text())
loads = payload["offered_loads_per_ms"]
assert loads == sorted(loads) and len(loads) >= 3, loads
for name, config in sorted(payload["configs"].items()):
    points = config["points"]
    assert [p["offered_load_per_ms"] for p in points] == loads, name
    goodputs = [p["goodput_per_s"] for p in points]
    # Goodput rises monotonically until the saturation knee; past it the
    # curve may flatten or fall but never resumes climbing to a new peak.
    knee = goodputs.index(max(goodputs))
    for left, right in zip(goodputs[:knee], goodputs[1:knee + 1]):
        assert right >= left, (name, goodputs)
    for point in points:
        assert set(point["statuses"]) <= set(ApiStatus.ALL), (name, point)
        assert point["statuses"].get(ApiStatus.REJECTED, 0) == point["shed"], (
            name, point)
        assert point["completed"] + point["shed"] == point["requests"], (
            name, point)
    print(f"saturation smoke: {name}: knee at "
          f"{loads[knee]}/ms, peak goodput {max(goodputs):.0f}/s, "
          f"top-load shed {points[-1]['shed']}")
PY

echo "== tier-1: replicated failover scenario smoke (+ bounded WAL) =="
python - <<'PY'
from repro import build_platform
from repro.workload.consumers import ConsumerPopulation
from repro.workload.scenarios import ScenarioRunner

platform = build_platform(seed=5, num_buyer_servers=3, replication_factor=1,
                          replication_wal_truncate_threshold=32)
runner = ScenarioRunner(platform, ConsumerPopulation(12, groups=3, seed=5), seed=5)
report = runner.replicated_failover_day(sessions=24, refresh_interval_ms=1500.0)
assert report.sessions == 24, report.as_dict()
assert report.lost_consumers == 0, report.as_dict()
assert report.recovered_purged == report.drained_consumers, report.as_dict()
assert platform.metrics.counter("replication.entries_shipped").value > 0
# Bounded WAL: snapshot + truncate was observed and every retained log stays
# below a fixed entry bound (threshold + one anti-entropy interval of tail),
# even though far more entries were appended over the whole day.
assert platform.event_log.count("replication.wal-truncated") > 0
appended = sum(s.replication.log.last_seq for s in platform.buyer_servers)
retained = sum(len(s.replication.log) for s in platform.buyer_servers)
for server in platform.buyer_servers:
    assert len(server.replication.log) <= 96, (
        server.name, len(server.replication.log))
assert retained < appended, (retained, appended)
print("replicated_failover_day: OK", report.as_dict())
print(f"bounded WAL: {appended} entries appended, {retained} retained")
PY

echo "== tier-1: flash-crowd smoke (autoscaler must scale out on the spike, =="
echo "==         drain back to the founding floor, and lose nobody)         =="
python - <<'PY'
import json
from pathlib import Path

from repro import build_platform
from repro.api import ApiStatus
from repro.ecommerce import AutoscalerPolicy
from repro.workload.consumers import ConsumerPopulation
from repro.workload.scenarios import ScenarioRunner

platform = build_platform(seed=5, num_buyer_servers=3, replication_factor=1)
runner = ScenarioRunner(platform, ConsumerPopulation(120, seed=5), seed=5)
report = runner.flash_crowd_day(sessions_per_window=60,
                                policy=AutoscalerPolicy(cooldown_ticks=1))
d = report.as_dict()
assert d["peak_servers"] > d["initial_servers"], d["fleet_sizes"]
assert d["final_servers"] == d["initial_servers"], d["fleet_sizes"]
actions = [decision["action"] for decision in d["decisions"]]
assert "scale-out" in actions and "scale-in" in actions, actions
assert d["splits"] + d["handbacks"] > 0, d
assert d["lost_consumers"] == 0 and d["missing_consumers"] == 0, d
assert set(d["statuses"]) <= set(ApiStatus.ALL), d["statuses"]
assert d["epoch_trail"] == sorted(d["epoch_trail"]), d["epoch_trail"]

# The checked-in elastic artifact must keep holding the same bars.
payload = json.loads(Path("benchmarks/BENCH_elastic_fleet.json").read_text())
flash = payload["scenarios"]["flash_crowd"]["report"]
upgrade = payload["scenarios"]["rolling_upgrade"]["report"]
assert flash["peak_servers"] > flash["initial_servers"] == flash["final_servers"]
assert {"scale-out", "scale-in"} <= {x["action"] for x in flash["decisions"]}
upgrades = [w for w in upgrade["windows"] if "server" in w]
assert upgrades and all(w["ownership_restored"] for w in upgrades)
for rep in (flash, upgrade):
    assert rep["lost_consumers"] == 0 and rep["missing_consumers"] == 0
    assert set(rep["statuses"]) <= set(ApiStatus.ALL)
    assert rep["epoch_trail"] == sorted(rep["epoch_trail"])
print("flash crowd smoke: OK —",
      f"fleet {d['fleet_sizes']}, epochs {d['epoch_trail']},",
      f"{d['transferred_consumers']} consumers migrated live, 0 lost;",
      "artifact bars hold")
PY

echo "== tier-1: promotion failover scenario smoke =="
python - <<'PY'
from repro import build_platform
from repro.workload.consumers import ConsumerPopulation
from repro.workload.scenarios import ScenarioRunner

platform = build_platform(seed=5, num_buyer_servers=3, replication_factor=1,
                          replication_wal_truncate_threshold=32)
runner = ScenarioRunner(platform, ConsumerPopulation(12, groups=3, seed=5), seed=5)
report = runner.promotion_failover_day(sessions=24, refresh_interval_ms=1500.0)
assert report.sessions == 24, report.as_dict()
assert report.lost_consumers == 0, report.as_dict()
assert report.promoted_consumers > 0, report.as_dict()
assert report.stale_shard_answers > 0, report.as_dict()
assert report.recovered_purged == report.promoted_consumers, report.as_dict()
assert len(platform.event_log.by_category("fleet.failover-promotion")) == 1
assert platform.event_log.by_category("fleet.failover-drain") == []
print("promotion_failover_day: OK", report.as_dict())
PY

echo "== tier-1: adversarial chaos smoke (invariants + attack shedding) =="
python - <<'PY'
import json
from pathlib import Path

from repro import build_platform
from repro.api import ApiStatus
from repro.workload.consumers import ConsumerPopulation
from repro.workload.scenarios import ScenarioRunner

platform = build_platform(seed=11, num_buyer_servers=3, replication_factor=1,
                          handshake_trades=True)
runner = ScenarioRunner(platform, ConsumerPopulation(20, seed=11), seed=11)
report = runner.chaos_marketplace_day(
    windows=3, sessions_per_window=10,
    chaos_outages=2, chaos_horizon_ms=4000.0,
    chaos_mean_gap_ms=600.0, chaos_mean_outage_ms=1500.0,
    scalpers=3, bids_per_scalper=2, protocol_rounds=1, flood_requests=10,
    seed=11)
d = report.as_dict()
# Acceptance bars: clean invariant audit, zero attacker success, honest
# goodput floor — under real chaos (faults actually landed).
assert d["audit"]["ok"] and d["audit"]["violations"] == [], d["audit"]
assert d["attacker_success_rate"] == 0.0, d["adversary"]
assert d["adversary"]["protocol"]["succeeded"] == 0, d["adversary"]
assert d["honest_goodput"] >= 0.85, d["honest_goodput"]
assert d["outages"] > 0, d
assert set(d["statuses"]) <= set(ApiStatus.ALL), d["statuses"]
for kind in ("forged-nonce", "replayed-offer", "double-finalize",
             "stale-credential"):
    assert d["auth_rejections"].get(kind, 0) > 0, d["auth_rejections"]

# The checked-in adversarial artifact must keep holding the same bars.
payload = json.loads(Path("benchmarks/BENCH_adversarial.json").read_text())
rep = payload["scenarios"]["chaos_marketplace_day"]["report"]
assert rep["audit"]["ok"] and rep["audit"]["violations"] == []
assert rep["attacker_success_rate"] == 0.0
assert rep["honest_goodput"] >= 0.85
assert rep["outages"] > 0
print("chaos_marketplace_day: OK —",
      f"goodput {d['honest_goodput']:.3f}, {d['outages']} outages,",
      f"{sum(d['auth_rejections'].values())} attacks refused, audit clean;",
      "artifact bars hold")
PY

echo "ci_check: OK"
