"""Sharded similar-user search and the multi-server buyer agent fleet.

Two demos of the PR-2 scaling architecture:

1. **Core index sharding** — a :class:`~repro.core.sharding.ShardedNeighborIndex`
   partitions a consumer community over N shards (consumer-hash or by-category
   routing), answers similar-user queries by fan-out + exact top-k merge, and
   is checked live against the brute-force reference — identical ids, scores
   and order, while the norm-bound early termination (Cauchy-Schwarz
   tightened by the cached L1/L-inf Hölder bound) skips dot products inside
   every shard.

2. **Fleet serving** — a platform built with ``num_buyer_servers=3`` routes
   consumers to shard-owning buyer agent servers; client traffic (including
   the fleet-wide similar-consumer lookup) goes through the platform
   gateway, whose envelopes surface the fan-out provenance, and the periodic
   recommendation refresh runs from a real scheduled platform event.

Run with::

    python examples/sharded_neighbors.py
"""

from __future__ import annotations

from repro import build_platform
from repro.core.sharding import ShardedNeighborIndex
from repro.core.similarity import SimilarityConfig, find_similar_users
from repro.workload.consumers import ConsumerPopulation
from repro.workload.scenarios import ScenarioRunner


def core_sharding_demo() -> None:
    """Shard an offline community and verify the merge is exact."""
    from repro.experiments import build_standard_dataset

    dataset = build_standard_dataset(num_consumers=300, num_items=80,
                                     events_per_user=6, seed=23)
    profiles = dataset.build_profiles()
    config = SimilarityConfig(top_k=5)

    print("Sharding a 300-consumer community ...")
    for routing in ("hash", "category"):
        index = ShardedNeighborIndex(
            profiles=profiles.values(), config=config,
            num_shards=4, routing=routing,
        )
        target = profiles[dataset.users[0]]
        sharded = index.find_similar(target)
        brute = find_similar_users(target, profiles.values(), config)
        assert sharded == brute, "sharded search must equal brute force"
        print(f"  routing={routing:<8s} shard sizes={index.shard_sizes()} "
              f"norm-bound skips={index.bound_skips}")
        print(f"    top neighbours of {target.user_id}: "
              + ", ".join(f"{uid} ({score:.3f})" for uid, score in sharded[:3]))
    print("  sharded results identical to brute force: yes")
    print()


def fleet_demo() -> None:
    """Run a consumer community against a three-server fleet."""
    platform = build_platform(num_marketplaces=2, num_sellers=2,
                              items_per_seller=20, seed=29,
                              num_buyer_servers=3, neighbor_shards=2,
                              replication_factor=1)
    gateway = platform.gateway()
    population = ConsumerPopulation(15, groups=3, seed=30)
    runner = ScenarioRunner(platform, population, seed=31)

    print("Fleet mode: 15 consumers routed across 3 buyer agent servers ...")
    runner.warm_up(sessions_per_consumer=1, queries_per_session=2)
    print(f"  consumers per server: {platform.stats()['buyer_servers']}")

    report = runner.sharded_stress_day(sessions=40, refresh_interval_ms=600.0,
                                       recommendation_probability=0.4)
    print(f"  stress day: sessions={report.sessions} queries={report.queries} "
          f"scheduled refreshes={report.batch_refreshes}")

    target = population.consumers()[0]
    similar = gateway.find_similar(target.user_id)
    print(f"  fleet-wide neighbours of {target.user_id} "
          f"(status={similar.status}): "
          + (", ".join(f"{uid} ({score:.3f})"
                       for uid, score in similar.result.neighbors[:3])
             or "(none yet)"))

    # Failure handling: a fleet-wide lookup never errors on a crashed
    # server — the dead shard is answered from its freshest replica (a
    # quorum read, reported in the envelope's stale-shard provenance); the
    # explicit handle_server_failure below then promotes that replica to
    # primary so ordinary routing takes over again.
    victim = platform.fleet.servers[1]
    platform.failures.crash_host(victim.context.host.name)
    response = gateway.find_similar(target.user_id)
    print(f"  {victim.name} crashed; envelope status={response.status} "
          f"stale={dict(response.provenance.stale_shards)} "
          f"unreachable={list(response.provenance.unreachable_shards)}")
    moved = platform.fleet.handle_server_failure(1)
    print(f"  failover moved {moved} consumers; "
          f"shard sizes now {platform.fleet.shard_sizes()}")
    healed = gateway.find_similar(target.user_id)
    print(f"  queries answered by the surviving servers: "
          f"{len(healed.result.neighbors)} neighbours returned "
          f"(status={healed.status})")


if __name__ == "__main__":
    core_sharding_demo()
    fleet_demo()
