"""Marketplace trading: auctions, negotiations and multi-marketplace shopping.

Demonstrates the trading services of §3.2 — information query, negotiation and
auctions — and capability claim 3 of §5.1: one Mobile Buyer Agent collecting
merchandise information from more than two marketplaces so the consumer does
not have to browse and compare prices site by site.  All operations go
through the platform gateway and return the uniform envelope.

Run with::

    python examples/marketplace_trading.py
"""

from __future__ import annotations

from collections import defaultdict

from repro import build_platform


def main() -> None:
    # Four marketplaces, four sellers, listings spread round-robin so every
    # marketplace carries different merchandise.
    platform = build_platform(num_marketplaces=4, num_sellers=4,
                              items_per_seller=25, seed=11)
    gateway = platform.gateway()
    gateway.login("bob")

    # -- multi-marketplace price comparison ------------------------------------
    response = gateway.query("bob", "books")
    results = response.result.hits
    by_marketplace = defaultdict(list)
    for hit in results:
        by_marketplace[hit.marketplace].append(hit)
    print(f"One MBA itinerary visited {len(by_marketplace)} marketplaces and "
          f"found {len(results)} book listings "
          f"({response.latency_ms:.2f} ms simulated):")
    for marketplace, hits in sorted(by_marketplace.items()):
        cheapest = min(hits, key=lambda h: h.price)
        print(f"  {marketplace:<16s} {len(hits):>3d} items, cheapest "
              f"{cheapest.item.name!r} at {cheapest.price:.2f}")
    print()

    if not results:
        print("No books listed — nothing to trade today.")
        gateway.logout("bob")
        return

    cheapest_overall = min(results, key=lambda h: h.price)
    priciest = max(results, key=lambda h: h.price)

    # -- auction ------------------------------------------------------------------
    auction = gateway.join_auction(
        "bob", priciest.item, max_price=priciest.price * 1.3,
        marketplace=priciest.marketplace,
    )
    outcome = auction.result.outcome
    print(f"Auction for {priciest.item.name!r} (list {priciest.price:.2f}):")
    print(f"  rounds={outcome.get('rounds')}  bids={outcome.get('bids')}  "
          f"won={auction.result.succeeded}"
          + (f"  paid={auction.result.price_paid:.2f}"
             if auction.result.succeeded else ""))
    print()

    # -- negotiation ----------------------------------------------------------------
    negotiation = gateway.negotiate(
        "bob", cheapest_overall.item, max_price=cheapest_overall.price * 0.92,
        marketplace=cheapest_overall.marketplace,
    )
    print(f"Negotiation for {cheapest_overall.item.name!r} "
          f"(list {cheapest_overall.price:.2f}):")
    if negotiation.result.succeeded:
        saved = cheapest_overall.price - negotiation.result.price_paid
        print(f"  agreed at {negotiation.result.price_paid:.2f} "
              f"after {negotiation.result.outcome.get('rounds')} rounds "
              f"(saved {saved:.2f})")
    else:
        print(f"  no agreement after "
              f"{negotiation.result.outcome.get('rounds')} rounds")
    print()

    # -- what the mechanism learned ---------------------------------------------------
    recommendations = gateway.recommendations("bob", k=5, category="books")
    print("Book recommendations after this shopping trip:")
    for rec in recommendations.result.recommendations:
        print(f"  {rec.item_id:<22s} score={rec.score:.3f}  ({rec.reason})")

    gateway.logout("bob")
    print()
    stats = gateway.admin_stats().result.stats
    print("Marketplace statistics after the session:")
    for name, market_stats in sorted(stats["marketplaces"].items()):
        print(f"  {name:<16s} transactions={int(market_stats['transactions'])} "
              f"auctions={int(market_stats['auctions'])} "
              f"negotiations={int(market_stats['negotiations'])}")


if __name__ == "__main__":
    main()
