"""Overlapping sessions through the gateway's concurrent submit path.

Until PR 6 every scenario was one client running requests back to back —
the platform never saw two sessions in flight, so admission control never
shed and queues never formed.  This walkthrough runs a few hundred
*overlapping* sessions: Poisson arrivals, per-session think time, per-server
FIFO queueing, and an admission bucket sized to actually shed under the
offered load.  Everything is simulated and seeded, so the whole report is
deterministic.

Run with::

    python examples/concurrent_load.py
"""

from __future__ import annotations

from repro import build_platform
from repro.api.requests import LoginRequest, QueryRequest
from repro.workload.consumers import ConsumerPopulation
from repro.workload.scenarios import ScenarioRunner


def main() -> None:
    platform = build_platform(
        seed=11,
        num_buyer_servers=4,
        replication_factor=1,
        api_admission_capacity=60,
        api_admission_refill_per_ms=0.25,
    )
    gateway = platform.gateway()

    # --- the submit path, by hand: two sessions that overlap ----------------
    scheduler = gateway.sessions
    base = scheduler.horizon
    first = gateway.submit(LoginRequest("alice"), at_ms=base, session_id="alice")
    second = gateway.submit(LoginRequest("bob"), at_ms=base, session_id="bob")
    first.add_done_callback(
        lambda f: gateway.submit(
            QueryRequest("alice", "book"), at_ms=f.finished_at_ms + 25.0
        )
    )
    scheduler.run_until_idle()
    print("Two overlapping logins (same instant, same-server contention possible):")
    for future in (first, second):
        response = future.response
        print(f"  {future.session_id:<6s} {response.status:<9s} "
              f"arrived={future.submitted_at_ms:8.2f}ms "
              f"finished={future.finished_at_ms:8.2f}ms "
              f"latency={response.latency_ms:6.2f}ms")
    print()

    # --- a whole day of overlapping sessions --------------------------------
    population = ConsumerPopulation(500, groups=4, seed=11)
    runner = ScenarioRunner(platform, population, seed=11)
    report = runner.concurrent_day(
        sessions=400,
        queries_per_session=2,
        arrival_rate_per_ms=0.15,
        think_time_ms=150.0,
        recommendation_probability=0.25,
        seed=11,
    )

    print(f"Concurrent day: {report.sessions} sessions, "
          f"{report.requests} requests, "
          f"{report.completed} completed, {report.shed} shed "
          f"(shed rate {report.shed_rate:.1%})")
    print(f"  statuses   : {report.statuses}")
    print(f"  latency    : p50={report.latency_ms['p50']:.1f}ms "
          f"p95={report.latency_ms['p95']:.1f}ms "
          f"p99={report.latency_ms['p99']:.1f}ms "
          f"(dispatched requests only)")
    print(f"  queue wait : count={report.queue_wait_ms['count']:.0f} "
          f"p95={report.queue_wait_ms['p95']:.1f}ms "
          f"max={report.queue_wait_ms['max']:.1f}ms")
    print("  latency histogram (ms):")
    for bucket in report.histogram:
        label = "+Inf" if bucket["le"] < 0 else f"<={bucket['le']:.0f}"
        count = int(bucket["count"])
        bar = "#" * min(60, count)
        print(f"    {label:>7s} {count:5d} {bar}")
    print()
    print(f"  simulated duration: {report.simulated_duration_ms:.0f}ms; "
          f"shared-clock work meter moved "
          f"{platform.scheduler.clock.now - base:.0f}ms "
          f"(total service time across all sessions)")


if __name__ == "__main__":
    main()
