"""Community recommendations: the similarity algorithm at work.

Warms the recommendation mechanism up with a whole community of consumers
(clustered into taste groups), then shows that a returning consumer receives
recommendation information that comes from the consumers most similar to them
— the core claim of §4.4 — and compares the mechanism against the §2.3
baselines (pure collaborative filtering, pure information filtering,
popularity) on the offline quality benchmark.

All live traffic goes through the platform gateway: the warm-up scenario
drives sessions with it internally, and the similar-consumer lookup uses
``gateway.find_similar`` — the same envelope a production client would see.

Run with::

    python examples/community_recommendations.py
"""

from __future__ import annotations

from repro import build_platform
from repro.experiments import (
    build_standard_dataset,
    build_standard_recommenders,
    evaluate_recommenders,
    format_table,
)
from repro.workload.consumers import ConsumerPopulation
from repro.workload.scenarios import ScenarioRunner


def live_platform_demo() -> None:
    """Run a consumer community through the live agent platform."""
    platform = build_platform(num_marketplaces=2, num_sellers=3,
                              items_per_seller=30, seed=19)
    gateway = platform.gateway()
    population = ConsumerPopulation(12, groups=3, seed=20)
    runner = ScenarioRunner(platform, population, seed=21)

    print("Warming up: 12 consumers shop across the platform ...")
    report = runner.warm_up(sessions_per_consumer=1, queries_per_session=2)
    print(f"  sessions={report.sessions} queries={report.queries} "
          f"purchases={report.purchases} auctions={report.auctions}")
    print()

    # One consumer comes back; who does the mechanism consider similar?
    target = population.consumers()[0]
    gateway.login(target.user_id)
    similar = gateway.find_similar(target.user_id)
    print(f"Consumers most similar to {target.user_id} "
          f"(taste group {target.group}, envelope status={similar.status}):")
    for neighbour_id, similarity in similar.result.neighbors[:5]:
        group = population.consumer(neighbour_id).group
        marker = "same group" if group == target.group else f"group {group}"
        print(f"  {neighbour_id:<16s} similarity={similarity:.3f}  ({marker})")
    print()

    recommendations = gateway.recommendations(target.user_id, k=8)
    print(f"Recommendations for {target.user_id}:")
    for rec in recommendations.result.recommendations:
        print(f"  {rec.item_id:<22s} score={rec.score:.3f}  ({rec.reason})")
    gateway.logout(target.user_id)
    print()


def offline_quality_comparison() -> None:
    """The CAP-4 offline comparison against the baselines."""
    print("Offline quality comparison (60 consumers, 150 items, 40 events each):")
    dataset = build_standard_dataset(num_consumers=60, events_per_user=40, seed=31)
    recommenders = build_standard_recommenders(dataset)
    rows = evaluate_recommenders(dataset, recommenders, k=10)
    print(format_table(rows))
    print()
    print("The agent-hybrid mechanism should lead on precision/recall while the")
    print("popularity baseline trails badly on coverage — the shape the paper's")
    print("related-work discussion (§2.3) predicts.")


def main() -> None:
    live_platform_demo()
    offline_quality_comparison()


if __name__ == "__main__":
    main()
