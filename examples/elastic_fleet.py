"""Elastic fleet: live shard moves, splits, and an autoscaled flash crowd.

Walks the PR 9 elasticity machinery end to end on a three-server fleet:

1. the versioned shard map (every ownership change bumps its epoch and is
   synced to the CA coordinator),
2. a live **shard handback** — a freshly joined server bootstraps shard 0
   from a replica snapshot, catches up through the WAL and takes ownership
   with an atomic epoch bump,
3. a live **shard split** — half of a shard's consumers (stable-hash
   membership) peel off onto a child shard, stepwise, while the fleet keeps
   answering queries mid-migration,
4. a ``flash_crowd_day`` scenario — a 10x arrival spike with the
   :class:`~repro.ecommerce.elasticity.FleetAutoscaler` ticking between
   traffic windows: scale out under pressure, drain back to the founding
   floor when the crowd leaves, zero consumers lost.

Run with::

    python examples/elastic_fleet.py
"""

from __future__ import annotations

from repro import build_platform
from repro.ecommerce import AutoscalerPolicy
from repro.workload.consumers import ConsumerPopulation
from repro.workload.scenarios import ScenarioRunner


def show_map(platform) -> None:
    shard_map = platform.fleet.shard_map
    owners = {shard: shard_map.owner_of(shard) for shard in shard_map.shard_ids()}
    print(f"  shard map (epoch {shard_map.epoch}): {owners}")


def main() -> None:
    platform = build_platform(seed=5, num_buyer_servers=3, replication_factor=1)
    fleet = platform.fleet
    print("Founding fleet:")
    show_map(platform)
    print()

    # Some consumers to move around.
    gateway = platform.gateway()
    for index in range(36):
        user_id = f"user-{index}"
        gateway.register(user_id)
        gateway.login(user_id)
        gateway.query(user_id, "book")
        gateway.logout(user_id)

    # --- Live shard handback onto a freshly joined server. ---------------
    newcomer = platform.add_buyer_server()
    print(f"Joined {newcomer.name}; handing shard 0 to it:")
    moved = fleet.transfer_shard(0, newcomer)
    print(f"  {moved} consumers moved (replica snapshot + WAL catch-up, "
          f"atomic flip)")
    show_map(platform)
    print()

    # --- Live shard split, stepwise, queries served throughout. ----------
    parent_owner = fleet.owner_of_shard(1)
    split = fleet.split_shard(1, target=fleet.servers[2])
    print(f"Splitting shard 1 -> child {split.child} "
          f"({len(split.pending)} consumers to move):")
    steps = 0
    while not split.done:
        split.step()
        steps += 1
        assert fleet.query_similar("user-0") is not None  # still serving
    split.finalize()
    print(f"  committed after {steps} steps; parent kept "
          f"{len(fleet.consumers_of(1))} consumers, child "
          f"{len(fleet.consumers_of(split.child))} "
          f"(owner {fleet.owner_of_shard(split.child).name}, "
          f"parent owner {parent_owner.name})")
    show_map(platform)
    print()

    # Put the topology back and retire the extra server.
    fleet.transfer_shard(split.child, parent_owner)
    fleet.transfer_shard(0, fleet.servers[0])
    platform.remove_buyer_server(newcomer)
    print(f"Handed everything home and decommissioned {newcomer.name}:")
    show_map(platform)
    print()

    # --- Flash crowd: the autoscaler reacts to a 10x spike. ---------------
    crowd_platform = build_platform(seed=5, num_buyer_servers=3,
                                    replication_factor=1)
    population = ConsumerPopulation(120, seed=5)
    runner = ScenarioRunner(crowd_platform, population, seed=5)
    report = runner.flash_crowd_day(
        sessions_per_window=60,
        policy=AutoscalerPolicy(cooldown_ticks=1),
    )

    print("Flash crowd day (1 baseline + 2 spike + 3 drain windows):")
    for window in report.windows:
        print(f"  [{window['phase']:<8s}] rate {window['arrival_rate_per_ms']}/ms, "
              f"{window['requests']} requests, shed {window['shed']}, "
              f"p99 {window['latency_p99_ms']:.0f}ms")
    print()
    print("Autoscaler decisions:")
    for decision in report.decisions:
        extra = f" -> {decision['server']}" if "server" in decision else ""
        print(f"  {decision['action']:<9s} {decision['reason']}{extra}")
    print()
    print(f"  fleet size trail : {report.fleet_sizes} "
          f"(peak {report.peak_servers}, back to {report.final_servers})")
    print(f"  epoch trail      : {report.epoch_trail}")
    print(f"  splits/handbacks : {report.splits}/{report.handbacks} "
          f"({report.transferred_consumers} consumers migrated live)")
    print(f"  consumers lost   : {report.lost_consumers} "
          f"(missing: {report.missing_consumers})")


if __name__ == "__main__":
    main()
