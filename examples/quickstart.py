"""Quickstart: one consumer using the agent-based recommendation mechanism.

Builds the full e-commerce platform (coordinator, marketplaces, sellers and
the buyer agent server) and drives it the way every client does: through the
versioned :class:`~repro.api.gateway.PlatformGateway`.  Every operation —
login, the Figure 4.2 merchandise query, the Figure 4.3 purchase, the
recommendation request — returns the same typed
:class:`~repro.api.envelope.ApiResponse` envelope carrying the result,
status, simulated latency and provenance.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import build_platform


def main() -> None:
    # 1. Assemble the platform: 2 marketplaces, 2 sellers, synthetic merchandise.
    platform = build_platform(num_marketplaces=2, num_sellers=2,
                              items_per_seller=30, seed=7)
    gateway = platform.gateway()
    print("Platform ready:")
    print(f"  marketplaces : {platform.marketplace_names()}")
    print(f"  catalogue    : {len(platform.catalog_view())} items")
    print(f"  simulated t  : {platform.now:.2f} ms (bootstrap + stocking)")
    print()

    # 2. A consumer registers and logs in: the mechanism creates their BRA.
    login = gateway.login("alice")
    print(f"alice logged in; her Buyer Recommend Agent is {login.result.bra_id}")
    print(f"  envelope: {login.describe()}")
    print()

    # 3. Figure 4.2: query merchandise.  The BRA sends a Mobile Buyer Agent to
    #    every marketplace; the recommendation mechanism ranks what it brings
    #    back and adds discoveries from similar consumers.
    response = gateway.query("alice", "laptop")
    results = response.result.hits
    print(f"Query 'laptop' -> {len(results)} results from the marketplaces "
          f"(status={response.status}, {response.latency_ms:.2f} ms simulated)")
    for hit in results[:5]:
        print(f"  {hit.item.name:<38s} {hit.price:>8.2f}  @ {hit.marketplace}")
    print()

    # 4. Figure 4.3: buy the best hit, then bargain for another item.
    if results:
        best = results[0]
        purchase = gateway.buy("alice", best.item, marketplace=best.marketplace)
        print(f"Bought {best.item.name!r} for {purchase.result.price_paid:.2f} "
              f"(list price {best.price:.2f})")
        negotiation = gateway.negotiate("alice", best.item,
                                        max_price=best.price * 0.9,
                                        marketplace=best.marketplace)
        if negotiation.result.succeeded:
            print(f"Negotiated a second unit down to "
                  f"{negotiation.result.price_paid:.2f}")
        else:
            print("Negotiation for a second unit failed (seller held its reserve)")
    print()

    # 5. Ask the mechanism for recommendations directly (no marketplace trip).
    recommendations = gateway.recommendations("alice", k=5)
    print("Recommendations for alice:")
    for rec in recommendations.result.recommendations:
        print(f"  {rec.item_id:<22s} score={rec.score:.3f}  ({rec.reason})")
    print()

    # 6. Peek at the workflow trace the agents produced (Figures 4.2/4.3) and
    #    the gateway's own accounting.
    workflow_events = [e for e in platform.event_log if e.category.startswith("workflow.")]
    print(f"The agents recorded {len(workflow_events)} workflow steps; the first ten:")
    for event in workflow_events[:10]:
        print("  " + event.describe())
    print()
    metrics = platform.metrics
    print(f"Gateway accounting: {metrics.counter('api.requests').value:.0f} requests, "
          f"{metrics.counter('api.status.ok').value:.0f} ok; p95 simulated latency "
          f"{metrics.timer('api.latency_ms').summary()['p95']:.2f} ms")

    gateway.logout("alice")
    print()
    print(f"alice logged out; total simulated time {platform.now:.2f} ms")


if __name__ == "__main__":
    main()
