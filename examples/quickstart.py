"""Quickstart: one consumer using the agent-based recommendation mechanism.

Builds the full e-commerce platform (coordinator, marketplaces, sellers and
the buyer agent server), logs a consumer in, runs the Figure 4.2 merchandise
query workflow and the Figure 4.3 purchase workflow, and prints the
recommendation information the mechanism generates along the way.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import build_platform


def main() -> None:
    # 1. Assemble the platform: 2 marketplaces, 2 sellers, synthetic merchandise.
    platform = build_platform(num_marketplaces=2, num_sellers=2,
                              items_per_seller=30, seed=7)
    print("Platform ready:")
    print(f"  marketplaces : {platform.marketplace_names()}")
    print(f"  catalogue    : {len(platform.catalog_view())} items")
    print(f"  simulated t  : {platform.now:.2f} ms (bootstrap + stocking)")
    print()

    # 2. A consumer registers and logs in: the mechanism creates their BRA.
    session = platform.login("alice")
    print("alice logged in; her Buyer Recommend Agent is", session.bra_id)
    print()

    # 3. Figure 4.2: query merchandise.  The BRA sends a Mobile Buyer Agent to
    #    every marketplace; the recommendation mechanism ranks what it brings
    #    back and adds discoveries from similar consumers.
    results = session.query("laptop")
    print(f"Query 'laptop' -> {len(results)} results from the marketplaces")
    for hit in results[:5]:
        print(f"  {hit.item.name:<38s} {hit.price:>8.2f}  @ {hit.marketplace}")
    print()

    # 4. Figure 4.3: buy the best hit, then bargain for another item.
    if results:
        best = results[0]
        purchase = session.buy(best.item, marketplace=best.marketplace)
        print(f"Bought {best.item.name!r} for {purchase.price_paid:.2f} "
              f"(list price {best.price:.2f})")
        negotiation = session.negotiate(best.item, max_price=best.price * 0.9,
                                        marketplace=best.marketplace)
        if negotiation.succeeded:
            print(f"Negotiated a second unit down to {negotiation.price_paid:.2f}")
        else:
            print("Negotiation for a second unit failed (seller held its reserve)")
    print()

    # 5. Ask the mechanism for recommendations directly (no marketplace trip).
    recommendations = session.recommendations(k=5)
    print("Recommendations for alice:")
    for rec in recommendations:
        print(f"  {rec.item_id:<22s} score={rec.score:.3f}  ({rec.reason})")
    print()

    # 6. Peek at the workflow trace the agents produced (Figures 4.2/4.3).
    workflow_events = [e for e in platform.event_log if e.category.startswith("workflow.")]
    print(f"The agents recorded {len(workflow_events)} workflow steps; the first ten:")
    for event in workflow_events[:10]:
        print("  " + event.describe())

    session.logout()
    print()
    print(f"alice logged out; total simulated time {platform.now:.2f} ms")


if __name__ == "__main__":
    main()
