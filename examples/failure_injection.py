"""Failure injection: what happens when a marketplace goes down.

The paper motivates mobile agents with robustness and fault tolerance (§1).
This example crashes one marketplace mid-shopping-session and shows that the
recommendation mechanism simply drops it from the Mobile Buyer Agent's
itinerary (the consumer still gets results from the survivors), that an
outage of *every* marketplace comes back as a clean ``failed`` envelope with
a structured error — the gateway never raises at a client — and that full
coverage returns once the hosts recover.

Run with::

    python examples/failure_injection.py
"""

from __future__ import annotations

from repro import build_platform


def main() -> None:
    platform = build_platform(num_marketplaces=3, num_sellers=3,
                              items_per_seller=20, seed=29)
    gateway = platform.gateway()
    gateway.login("carol")

    all_marketplaces = platform.marketplace_names()
    print(f"Marketplaces online: {all_marketplaces}")
    response = gateway.query("carol", "books")
    print(f"Initial query across all marketplaces: "
          f"{len(response.result.hits)} items found (status={response.status})")
    print()

    # -- crash one marketplace ---------------------------------------------------
    victim = all_marketplaces[0]
    platform.failures.crash_host(victim)
    print(f"*** {victim} has crashed ***")

    response = gateway.query("carol", "books")
    results = response.result.hits
    sources = sorted({hit.marketplace for hit in results})
    print(f"The MBA skipped the dead marketplace and still found {len(results)} items "
          f"from {sources}")
    skipped = platform.event_log.by_category("workflow.itinerary-filtered")[-1]
    print(f"Event log records the filtered itinerary: skipped={skipped.payload['skipped']}")
    if results:
        best = results[0]
        purchase = gateway.buy("carol", best.item, marketplace=best.marketplace)
        print(f"Bought {best.item.name!r} on {best.marketplace} "
              f"for {purchase.result.price_paid:.2f} despite the outage")
    print()

    # -- total outage -------------------------------------------------------------
    for name in all_marketplaces[1:]:
        platform.failures.crash_host(name)
    print("*** every marketplace is now down ***")
    response = gateway.query("carol", "books")
    print(f"Total outage is reported cleanly in the envelope: "
          f"status={response.status} error={response.error.code} "
          f"({response.error.kind}: {response.error.message})")
    print()

    # -- recovery ---------------------------------------------------------------------
    for name in all_marketplaces:
        platform.failures.recover_host(name)
    print("*** all marketplaces have recovered ***")
    response = gateway.query("carol", "books")
    print(f"Query across all marketplaces again: "
          f"{len(response.result.hits)} items found from "
          f"{sorted({hit.marketplace for hit in response.result.hits})}")

    gateway.logout("carol")
    print()
    print("Network statistics:", platform.network.stats())


if __name__ == "__main__":
    main()
