"""Failure injection: what happens when a marketplace goes down.

The paper motivates mobile agents with robustness and fault tolerance (§1).
This example crashes one marketplace mid-shopping-session and shows that the
recommendation mechanism simply drops it from the Mobile Buyer Agent's
itinerary (the consumer still gets results from the survivors), that an
outage of *every* marketplace is reported as a clean error, and that full
coverage returns once the host recovers.

Run with::

    python examples/failure_injection.py
"""

from __future__ import annotations

from repro import build_platform
from repro.errors import ReproError


def main() -> None:
    platform = build_platform(num_marketplaces=3, num_sellers=3,
                              items_per_seller=20, seed=29)
    session = platform.login("carol")

    all_marketplaces = platform.marketplace_names()
    print(f"Marketplaces online: {all_marketplaces}")
    results = session.query("books")
    print(f"Initial query across all marketplaces: {len(results)} items found")
    print()

    # -- crash one marketplace ---------------------------------------------------
    victim = all_marketplaces[0]
    platform.failures.crash_host(victim)
    print(f"*** {victim} has crashed ***")

    results = session.query("books")
    sources = sorted({hit.marketplace for hit in results})
    print(f"The MBA skipped the dead marketplace and still found {len(results)} items "
          f"from {sources}")
    skipped = platform.event_log.by_category("workflow.itinerary-filtered")[-1]
    print(f"Event log records the filtered itinerary: skipped={skipped.payload['skipped']}")
    if results:
        best = results[0]
        purchase = session.buy(best.item, marketplace=best.marketplace)
        print(f"Bought {best.item.name!r} on {best.marketplace} "
              f"for {purchase.price_paid:.2f} despite the outage")
    print()

    # -- total outage -------------------------------------------------------------
    for name in all_marketplaces[1:]:
        platform.failures.crash_host(name)
    print("*** every marketplace is now down ***")
    try:
        session.query("books")
    except ReproError as exc:
        print(f"Total outage is reported cleanly: {type(exc).__name__}: {exc}")
    print()

    # -- recovery ---------------------------------------------------------------------
    for name in all_marketplaces:
        platform.failures.recover_host(name)
    print("*** all marketplaces have recovered ***")
    results = session.query("books")
    print(f"Query across all marketplaces again: {len(results)} items found from "
          f"{sorted({hit.marketplace for hit in results})}")

    session.logout()
    print()
    print("Network statistics:", platform.network.stats())


if __name__ == "__main__":
    main()
