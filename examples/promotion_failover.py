"""Replica promotion: a crashed buyer server's shard fails over in place.

Builds a three-server fleet with replication and a bounded write-ahead log,
then runs the ``promotion_failover_day`` scenario: normal traffic, a crash, a
quorum window where fleet queries answer the dead shard from its freshest
replica (marked stale), the promotion itself — the replica holder adopts the
dead server's shard with **zero consumer re-registration and zero state
transfer** (the replica already lives on it) — and finally recovery, where
the old host rejoins as replica capacity while shard ownership stays put.

Run with::

    python examples/promotion_failover.py
"""

from __future__ import annotations

from repro import build_platform
from repro.workload.consumers import ConsumerPopulation
from repro.workload.scenarios import ScenarioRunner


def main() -> None:
    platform = build_platform(
        seed=7, num_buyer_servers=3, replication_factor=1,
        replication_wal_truncate_threshold=32,
    )
    fleet = platform.fleet
    print("Fleet ready:")
    for server in fleet.servers:
        peers = [peer.name for peer in server.replication.peers]
        print(f"  {server.name} -> replicates to {peers}")
    print(f"  coordinator shard map: {platform.coordinator.topology()['shard_map']}")
    print()

    population = ConsumerPopulation(18, groups=3, seed=7)
    runner = ScenarioRunner(platform, population, seed=7)
    report = runner.promotion_failover_day(sessions=36, refresh_interval_ms=1500.0)

    print("Promotion failover day report:")
    for key, value in report.as_dict().items():
        print(f"  {key:<26s} {value}")
    print()

    promotion = platform.event_log.by_category("fleet.failover-promotion")[0]
    print("Promotion:")
    print(f"  {promotion.source} -> {promotion.target} "
          f"(shards {promotion.payload['shards']}, "
          f"{promotion.payload['adopted']} consumers adopted in place)")
    print(f"  coordinator shard map now: "
          f"{platform.coordinator.topology()['shard_map']}")
    print(f"  stale-answered fleet queries during the outage window: "
          f"{report.stale_shard_answers}")
    print()

    metrics = platform.metrics
    print("Bounded write-ahead logs (snapshot + truncate):")
    print(f"  entries truncated : "
          f"{metrics.counter('replication.wal.truncated_entries').value:.0f} "
          f"({platform.event_log.count('replication.wal-truncated')} truncations)")
    for server in fleet.servers:
        log = server.replication.log
        print(f"  {server.name}: appended {log.last_seq}, retained {len(log)} "
              f"(truncated through seq {log.truncated_seq})")
    print()

    print("Replication after retarget:")
    for server in fleet.servers:
        peers = [peer.name for peer in server.replication.peers]
        lags = {peer.name: server.replication.lag_of(peer.name)
                for peer in server.replication.peers}
        print(f"  {server.name} -> {peers} (lag {lags})")

    consumer = population.consumers()[0]
    gateway = platform.gateway()
    response = gateway.find_similar(consumer.user_id)
    print()
    print(f"gateway.find_similar({consumer.user_id!r}) after recovery:")
    print(f"  status     : {response.status}")
    print(f"  neighbours : "
          f"{[(uid, round(s, 3)) for uid, s in response.result.neighbors[:5]]}")
    print(f"  degraded   : {response.provenance.degraded} "
          f"(unreachable: {list(response.provenance.unreachable_shards)}, "
          f"stale: {response.provenance.stale_shards})")


if __name__ == "__main__":
    main()
