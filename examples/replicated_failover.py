"""Replicated buyer-server fleet surviving a mid-traffic crash.

Builds a three-server fleet where every buyer agent server streams its UserDB
mutations to a replica peer over the simulated network, then runs the
``replicated_failover_day`` scenario: normal traffic, a server crash with a
replica-only drain (the dead host's memory is never read), degraded fleet
queries while the host is down, recovery and stale-copy purge.

Run with::

    python examples/replicated_failover.py
"""

from __future__ import annotations

from repro import build_platform
from repro.workload.consumers import ConsumerPopulation
from repro.workload.scenarios import ScenarioRunner


def main() -> None:
    platform = build_platform(
        seed=5, num_buyer_servers=3, replication_factor=1,
    )
    fleet = platform.fleet
    print("Fleet ready:")
    for server in fleet.servers:
        peers = [peer.name for peer in server.replication.peers]
        print(f"  {server.name} -> replicates to {peers}")
    print(f"  coordinator replica map: "
          f"{platform.coordinator.topology()['replica_map']}")
    print()

    population = ConsumerPopulation(18, groups=3, seed=5)
    runner = ScenarioRunner(platform, population, seed=5)
    report = runner.replicated_failover_day(sessions=36, refresh_interval_ms=1500.0)

    print("Failover day report:")
    for key, value in report.as_dict().items():
        print(f"  {key:<26s} {value}")
    print()

    metrics = platform.metrics
    print("Replication:")
    print(f"  entries shipped : {metrics.counter('replication.entries_shipped').value:.0f}")
    print(f"  deferred (down) : {metrics.counter('replication.deferred').value:.0f}")
    print(f"  catch-up events : {platform.event_log.count('replication.catch-up')}")
    for server in fleet.servers:
        for peer in server.replication.peers:
            print(f"  lag {server.name} -> {peer.name}: "
                  f"{server.replication.lag_of(peer.name)} entries")
    print()

    print("Fan-out queries (async: clock charged max-of-shards + merge):")
    print(f"  queries            : {metrics.counter('fleet.fanout.queries').value:.0f}")
    print(f"  unreachable shards : "
          f"{metrics.counter('fleet.fanout.unreachable_shards').value:.0f} "
          f"(degraded answers during the outage window)")
    summary = metrics.timer('fleet.fanout.latency_ms').summary()
    print(f"  latency p50/p95    : {summary['p50']:.2f} / {summary['p95']:.2f} ms")

    # One last fleet-wide lookup through the gateway, with per-shard
    # provenance folded into the envelope.
    consumer = population.consumers()[0]
    gateway = platform.gateway()
    response = gateway.find_similar(consumer.user_id)
    print()
    print(f"gateway.find_similar({consumer.user_id!r}):")
    print(f"  status      : {response.status}")
    print(f"  neighbours  : "
          f"{[(uid, round(s, 3)) for uid, s in response.result.neighbors[:5]]}")
    print(f"  per shard   : "
          f"{ {name: round(ms, 2) for name, ms in response.provenance.shard_latencies_ms.items()} }")
    print(f"  latency     : {response.latency_ms:.2f} ms simulated")
    print(f"  degraded    : {response.provenance.degraded} "
          f"(unreachable: {list(response.provenance.unreachable_shards)})")


if __name__ == "__main__":
    main()
