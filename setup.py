"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in environments without the ``wheel`` package (where
PEP 660 editable installs are unavailable) via ``python setup.py develop`` or
legacy ``pip install -e .``.
"""

from setuptools import setup

setup()
